package numa

import (
	"testing"
	"testing/quick"

	"o2k/internal/machine"
	"o2k/internal/sim"
)

func space(procs int) (*Space, *machine.Machine) {
	m := machine.MustNew(machine.Default(procs))
	return NewSpace(m), m
}

func TestCacheBasics(t *testing.T) {
	c := newCache(512, 128) // 1 set x 4 ways: every line shares the set
	if c.access(5) {
		t.Fatal("first access should miss")
	}
	if !c.access(5) {
		t.Fatal("second access should hit")
	}
	// Within associativity: all coexist.
	for _, l := range []uint64{7, 9, 11} {
		c.access(l)
	}
	if !c.present(5) {
		t.Fatal("5 evicted while set had free ways")
	}
	// Fifth line overflows the 4-way set; LRU (5) is the victim after the
	// others were touched more recently.
	c.access(7)
	c.access(9)
	c.access(11)
	if c.access(13) {
		t.Fatal("new line should miss")
	}
	if c.present(5) {
		t.Fatal("LRU line should have been evicted")
	}
	if !c.present(7) || !c.present(13) {
		t.Fatal("recently-used lines lost")
	}
	if !c.invalidate(7) {
		t.Fatal("invalidate should evict present line")
	}
	if c.invalidate(7) {
		t.Fatal("invalidate of absent line should report false")
	}
	if c.cohEvicts != 1 {
		t.Fatalf("cohEvicts = %d, want 1", c.cohEvicts)
	}
	c.flush()
	if c.present(13) {
		t.Fatal("flush did not clear cache")
	}
}

func TestCacheLRUPromotionOnHit(t *testing.T) {
	c := newCache(512, 128) // 1 set x 4 ways
	for _, l := range []uint64{2, 4, 6, 8} {
		c.access(l)
	}
	c.access(2)  // promote the oldest line
	c.access(10) // evicts LRU, which is now 4
	if !c.present(2) {
		t.Fatal("promoted line evicted")
	}
	if c.present(4) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheNonPow2Capacity(t *testing.T) {
	c := newCache(1000, 128) // 1000/128/4 -> 1 set
	slots := 0
	for _, ch := range c.chunks {
		slots += len(ch)
	}
	if slots != cacheWays {
		t.Fatalf("tag slots = %d, want %d", slots, cacheWays)
	}
}

func TestCacheTagChunksLazilyMaterialized(t *testing.T) {
	// A fresh cache must not own a single chunk: all tag storage aliases the
	// shared zero chunk until a line is installed, and flush re-aliases it.
	c := newCache(1<<22, 128) // 4 MiB: 8192 sets, 32 chunks
	owned := func() int {
		n := 0
		for _, o := range c.owned {
			if o {
				n++
			}
		}
		return n
	}
	if got := owned(); got != 0 {
		t.Fatalf("fresh cache owns %d chunks, want 0", got)
	}
	if c.present(7) || c.invalidate(7) {
		t.Fatal("probe of untouched cache found a line")
	}
	if got := owned(); got != 0 {
		t.Fatalf("read-only probes materialized %d chunks, want 0", got)
	}
	c.access(7)
	if got := owned(); got != 1 {
		t.Fatalf("one install owns %d chunks, want 1", got)
	}
	if !c.present(7) || !c.access(7) {
		t.Fatal("installed line not found")
	}
	c.flush()
	if got := owned(); got != 0 {
		t.Fatalf("flushed cache owns %d chunks, want 0", got)
	}
	if c.present(7) {
		t.Fatal("line survived flush")
	}
}

func TestPrivateArrayLocalCost(t *testing.T) {
	sp, m := space(4)
	g := sim.NewGroup(4)
	a := NewPrivate[float64](sp, 2, 1000)
	p := g.Proc(2)
	a.Store(p, 0, 3.14)
	if p.LocalMisses != 1 || p.RemoteMisses != 0 {
		t.Fatalf("first store: local=%d remote=%d", p.LocalMisses, p.RemoteMisses)
	}
	if got := a.Load(p, 0); got != 3.14 {
		t.Fatalf("Load = %v", got)
	}
	if p.CacheHits != 1 {
		t.Fatalf("reload should hit cache, hits=%d", p.CacheHits)
	}
	// Element 1 shares the line with element 0 (128B line, 8B elems).
	a.Load(p, 1)
	if p.CacheHits != 2 {
		t.Fatalf("same-line load should hit, hits=%d", p.CacheHits)
	}
	// Element 16 is the next line.
	a.Load(p, 16)
	if p.LocalMisses != 2 {
		t.Fatalf("next-line load should miss locally, misses=%d", p.LocalMisses)
	}
	wantT := 2*m.Cfg.LocalMissNS + 2*m.Cfg.CacheHitNS
	if p.Now() != wantT {
		t.Fatalf("clock = %v, want %v", p.Now(), wantT)
	}
}

func TestRemoteAccessCost(t *testing.T) {
	sp, m := space(8) // 4 nodes
	g := sim.NewGroup(8)
	a := NewPrivate[float64](sp, 6, 100) // homed on node 3
	p := g.Proc(0)
	a.Load(p, 0)
	if p.RemoteMisses != 1 {
		t.Fatalf("expected remote miss, got %+v", p.Counters)
	}
	h := m.Hops(0, 6)
	want := m.Cfg.RemoteMissNS + sim.Time(h-1)*m.Cfg.RemoteHopNS
	if p.Now() != want {
		t.Fatalf("remote access cost %v, want %v", p.Now(), want)
	}
}

func TestPlacement(t *testing.T) {
	sp, m := space(4)
	// 16KB pages, 8B elems -> 2048 elems per page. 8192 elems = 4 pages.
	a := NewShared[float64](sp, 8192)

	a.PlaceUniform(3)
	for i := 0; i < 8192; i += 2048 {
		if a.Home(i) != 3 {
			t.Fatalf("PlaceUniform: home(%d) = %d", i, a.Home(i))
		}
	}
	a.PlaceInterleave()
	want := []int{0, 1, 2, 3}
	for pg := 0; pg < 4; pg++ {
		if a.Home(pg*2048) != want[pg] {
			t.Fatalf("PlaceInterleave: page %d home %d", pg, a.Home(pg*2048))
		}
	}
	a.PlaceBlock()
	if a.Home(0) != 0 || a.Home(8191) != 3 {
		t.Fatal("PlaceBlock endpoints wrong")
	}
	a.PlaceByElem(func(e int) int { return (e / 2048) % m.Procs() })
	for pg := 0; pg < 4; pg++ {
		if a.Home(pg*2048) != pg {
			t.Fatalf("PlaceByElem: page %d home %d", pg, a.Home(pg*2048))
		}
	}
}

func TestPlacementRejectsBadProc(t *testing.T) {
	sp, _ := space(2)
	a := NewShared[int64](sp, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range home")
		}
	}()
	a.PlaceUniform(5)
}

func TestEpochCoherence(t *testing.T) {
	sp, m := space(2)
	g := sim.NewGroup(2)
	a := NewShared[float64](sp, 256)
	a.PlaceUniform(0)
	p0, p1 := g.Proc(0), g.Proc(1)

	// Both cache line 0.
	a.Load(p0, 0)
	a.Load(p1, 0)
	if p1.CacheHits != 0 {
		t.Fatal("p1 first load should miss")
	}
	a.Load(p1, 0)
	if p1.CacheHits != 1 {
		t.Fatal("p1 reload should hit")
	}

	// p0 writes the line; merge invalidates p1's copy.
	a.Store(p0, 1, 42) // same line as element 0
	pen := sp.MergeEpoch()
	if pen[1] != m.Cfg.CohInvalPerLine {
		t.Fatalf("p1 penalty = %v, want %v", pen[1], m.Cfg.CohInvalPerLine)
	}
	if pen[0] != 0 {
		t.Fatalf("writer penalized: %v", pen[0])
	}

	// p1's next access misses again (coherence miss).
	misses := p1.LocalMisses
	a.Load(p1, 0)
	if p1.LocalMisses != misses+1 {
		t.Fatal("post-invalidation access should miss")
	}
	// Writer keeps its copy.
	hits := p0.CacheHits
	a.Load(p0, 0)
	if p0.CacheHits != hits+1 {
		t.Fatal("writer's copy should survive the merge")
	}
	if ev := sp.CohEvictions(); ev[1] != 1 || ev[0] != 0 {
		t.Fatalf("CohEvictions = %v", ev)
	}
}

func TestEpochClearsWriteSets(t *testing.T) {
	sp, _ := space(2)
	g := sim.NewGroup(2)
	a := NewShared[float64](sp, 256)
	p0 := g.Proc(0)
	a.Store(p0, 0, 1)
	sp.MergeEpoch()
	// Second merge with no new writes must not invalidate anything.
	g.Proc(1).ID()
	a.Load(g.Proc(1), 0)
	pen := sp.MergeEpoch()
	if pen[1] != 0 {
		t.Fatalf("stale write-set leaked into second epoch: %v", pen)
	}
}

func TestWriteDedup(t *testing.T) {
	sp, _ := space(2)
	g := sim.NewGroup(2)
	a := NewShared[float64](sp, 256)
	p0 := g.Proc(0)
	for i := 0; i < 16; i++ { // 16 stores, all one line
		a.Store(p0, i, float64(i))
	}
	if n := len(a.writeLines[0]); n != 1 {
		t.Fatalf("write-set has %d lines, want 1 (dedup)", n)
	}
}

func TestTouchRangeAndFill(t *testing.T) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 64) // 4 lines of 16 elems
	p := g.Proc(0)
	a.TouchRange(p, 0, 64, false)
	if p.LocalMisses != 4 {
		t.Fatalf("TouchRange charged %d misses, want 4", p.LocalMisses)
	}
	a.Fill(p, 0, 64, 9)
	for i := 0; i < 64; i++ {
		if a.Data()[i] != 9 {
			t.Fatal("Fill did not write data")
		}
	}
	a.TouchRange(p, 5, 5, true) // empty: no-op
}

func TestLineRange(t *testing.T) {
	sp, _ := space(1)
	a := NewPrivate[float64](sp, 0, 64)
	lo, hi := a.LineRange(0, 16)
	if hi-lo != 1 {
		t.Fatalf("16 elems of 8B in 128B lines = 1 line, got %d", hi-lo)
	}
	lo, hi = a.LineRange(0, 17)
	if hi-lo != 2 {
		t.Fatalf("17 elems = 2 lines, got %d", hi-lo)
	}
	if lo2, hi2 := a.LineRange(5, 5); lo2 != 0 || hi2 != 0 {
		t.Fatal("empty range should be (0,0)")
	}
}

func TestAllocAccounting(t *testing.T) {
	sp, _ := space(2)
	before := sp.AllocBytes()
	NewPrivate[float64](sp, 0, 1000)
	if sp.AllocBytes()-before != 8000 {
		t.Fatalf("alloc accounting: %d", sp.AllocBytes()-before)
	}
}

func TestAddressDisjointness(t *testing.T) {
	sp, _ := space(1)
	a := NewPrivate[byte](sp, 0, 100)
	b := NewPrivate[byte](sp, 0, 100)
	alo, ahi := a.LineRange(0, 100)
	blo, bhi := b.LineRange(0, 100)
	if !(ahi <= blo || bhi <= alo) {
		t.Fatalf("arrays overlap in line space: [%d,%d) vs [%d,%d)", alo, ahi, blo, bhi)
	}
}

// Property: identical access sequences give identical virtual times (the
// determinism guarantee everything else relies on).
func TestDeterministicCost(t *testing.T) {
	f := func(idx []uint16) bool {
		run := func() sim.Time {
			sp, _ := space(4)
			g := sim.NewGroup(4)
			a := NewShared[float64](sp, 4096)
			a.PlaceInterleave()
			p := g.Proc(1)
			for _, ix := range idx {
				i := int(ix) % 4096
				if ix%3 == 0 {
					a.Store(p, i, float64(ix))
				} else {
					a.Load(p, i)
				}
			}
			sp.MergeEpoch()
			return p.Now()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a second sweep over data that fits in cache is never slower than
// the first (monotone benefit of caching).
func TestCacheReuseProperty(t *testing.T) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 2048)
	p := g.Proc(0)
	a.TouchRange(p, 0, 2048, false)
	cold := p.Now()
	a.TouchRange(p, 0, 2048, false)
	warm := p.Now() - cold
	if warm >= cold {
		t.Fatalf("warm sweep (%v) not faster than cold (%v)", warm, cold)
	}
}
