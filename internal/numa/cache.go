// Package numa models the Origin2000 memory system: physically distributed
// memory with page-granularity placement, per-processor caches, and a
// deterministic release-consistency coherence model.
//
// Data lives in ordinary Go slices (so applications compute real results);
// the package's job is to charge virtual time for every access according to
// where the touched page is homed and whether the line is cached. Coherence
// is resolved at synchronization points: each shared array records the cache
// lines written per processor during an epoch, and at a barrier (or lock
// hand-off) those write-sets invalidate the line in every other processor's
// cache. Because invalidations happen only at synchronization-ordered points,
// the cost model is deterministic — identical on every run — while still
// capturing the communication-to-computation behaviour that drives CC-SAS
// performance: placement locality, cache reuse, and coherence misses on
// actively shared data.
package numa

// cacheWays is the set associativity. The R10000's secondary cache was
// 2-way; we use 4-way LRU so that the simulator's page-aligned allocation
// pattern does not manufacture conflict pathologies the real (physically
// indexed, OS-page-coloured) machine avoided.
const cacheWays = 4

// access and the miss path below are hand-unrolled for exactly four ways;
// this constant expression fails to compile if cacheWays changes.
const _ = uint(cacheWays-4) + uint(4-cacheWays)

// Tag storage is chunked and lazily materialized so the footprint stops
// scaling as procs × cache size: every untouched chunk of every cache
// aliases the one shared all-invalid chunk below, and a private (writable)
// copy is made only when a line is first installed in that chunk. At 1024
// simulated processors a 4 MiB cache would otherwise pin 128 KiB of tags
// per proc — 128 MiB of host memory — while a quick run touches a few
// chunks per proc. chunkSlots is a multiple of cacheWays, so a set never
// straddles two chunks.
const (
	chunkSlotsLog = 10
	chunkSlots    = 1 << chunkSlotsLog // 4 KiB of tags per chunk
)

// zeroChunk is the shared all-invalid chunk (tag 0 = invalid; real tags are
// uint32(line)+1 >= 1, so aliasing it is always sound). Read-only.
var zeroChunk [chunkSlots]uint32

// cache is a set-associative, line-tagged cache simulator with LRU
// replacement. It tracks only tags (presence), not data — data correctness
// is handled by the real Go slices. A cache is owned by exactly one
// processor; the coherence merge touches it only while that processor is
// blocked at a barrier.
// A tag is uint32(line)+1 (0 = invalid): global line indices are bounded by
// Space.reserve to fit 32 bits, and halving the tag width halves the host
// cache footprint of the hot tag arrays (64 simulated processors' tags no
// longer thrash the host LLC).
type cache struct {
	chunks    [][]uint32 // cacheWays tags per set, LRU-ordered (way 0 = MRU)
	owned     []bool     // chunks[i] is a private copy, not the zero chunk
	setMask   uint64
	setBits   uint // log2(number of sets)
	lineShift uint
	cohEvicts uint64 // lines invalidated by coherence since last reset

	// Conservative occupancy summary, maintained on install/invalidate, so
	// the coherence merge can skip probing caches that cannot hold a written
	// line. live counts valid tags; [minLine, maxLine] bounds every line
	// installed since the last flush (never shrunk by invalidation); sig is a
	// one-word Bloom signature of every line installed since the last flush
	// (see sigBit — never cleared by invalidation, so a resident line always
	// has its bit set). The range filter dies once a cache has touched arrays
	// at distant addresses; the signature keeps discriminating by address set,
	// which is what makes the merge affordable at hundreds of procs.
	live    int
	minLine uint64
	maxLine uint64
	sig     uint64

	// gen counts tag mutations (LRU shuffles, installs, invalidations,
	// flushes). Arrays record {line, gen} after each completed access; while
	// gen is unchanged, no tag has moved, so that line provably still occupies
	// the MRU way of its set and a repeat access may be charged as a hit
	// without re-probing (and without the LRU reorder a real probe would do,
	// because an MRU hit performs none). See Array.last.
	gen uint64
}

func newCache(cacheBytes, lineBytes int) *cache {
	sets := cacheBytes / lineBytes / cacheWays
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for masking.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	bits := uint(0)
	for 1<<bits < sets {
		bits++
	}
	if bits == 0 {
		bits = 1 // avoid zero shifts when there is a single set
	}
	n := sets * cacheWays
	c := &cache{
		chunks:    make([][]uint32, (n+chunkSlots-1)/chunkSlots),
		setMask:   uint64(sets - 1),
		setBits:   bits,
		lineShift: shift,
		minLine:   ^uint64(0),
	}
	c.owned = make([]bool, len(c.chunks))
	for i := range c.chunks {
		lo := i * chunkSlots
		hi := lo + chunkSlots
		if hi > n {
			hi = n
		}
		c.chunks[i] = zeroChunk[:hi-lo]
	}
	return c
}

// sigBit maps a line address to its Bloom-signature bit. The low shift gives
// 8-line granules (a processor's working set is a few contiguous blocks, so
// it occupies few bits), the xor folds distant address regions apart.
func sigBit(line uint64) uint64 {
	h := line >> 3
	h ^= h >> 6
	h ^= h >> 12
	return uint64(1) << (h & 63)
}

// setOf maps a line address to its set. The index XOR-folds higher address
// bits into the set bits — the deterministic stand-in for the physical page
// colouring real operating systems use, which keeps the simulator's
// page-aligned, power-of-two-strided allocations from aliasing into the
// same sets.
func (c *cache) setOf(line uint64) uint64 {
	return (line ^ line>>c.setBits ^ line>>(2*c.setBits)) & c.setMask
}

// setBase returns the tag-array offset of line's set; it must stay
// inlinable (the charge hot path uses it to probe the MRU way without a
// function call — repeated accesses to the current line, i.e. every
// streaming loop, resolve with two inlined loads).
func (c *cache) setBase(line uint64) uint64 {
	return ((line ^ line>>c.setBits ^ line>>(2*c.setBits)) & c.setMask) * cacheWays
}

// mruHit reports whether line occupies the MRU way of the set at base.
// The chunk indirection costs one extra load on the hottest path; it is
// what lets untouched chunks stay aliased to the shared zero chunk.
func (c *cache) mruHit(base, line uint64) bool {
	return c.chunks[base>>chunkSlotsLog][base&(chunkSlots-1)] == uint32(line)+1
}

// access looks line up and installs it as MRU; reports whether it was a hit.
func (c *cache) access(line uint64) bool {
	base := c.setBase(line)
	return c.mruHit(base, line) || c.accessSlow(base, line)
}

// accessSlow handles the non-MRU ways and the miss path. The ways are
// unrolled: a hit shifts at most three tags with register moves, where the
// generic copy() in a loop paid a runtime call per probe.
func (c *cache) accessSlow(base, line uint64) bool {
	c.gen++ // every path below reorders or installs tags
	ci := base >> chunkSlotsLog
	off := base & (chunkSlots - 1)
	set := c.chunks[ci][off : off+cacheWays : off+cacheWays]
	t := uint32(line) + 1
	// The hit cases below mutate set in place; they are only reachable when
	// the tag is present, which implies the chunk is already materialized.
	switch t {
	case set[1]:
		set[1] = set[0]
		set[0] = t
		return true
	case set[2]:
		set[2] = set[1]
		set[1] = set[0]
		set[0] = t
		return true
	case set[3]:
		set[3] = set[2]
		set[2] = set[1]
		set[1] = set[0]
		set[0] = t
		return true
	}
	// Miss: evict LRU (last way), install as MRU — the only path that writes
	// to a previously untouched chunk, so materialize a private copy first.
	// The aliased zero chunk is all-invalid; there is nothing to copy.
	if !c.owned[ci] {
		priv := make([]uint32, len(c.chunks[ci]))
		c.chunks[ci] = priv
		c.owned[ci] = true
		set = priv[off : off+cacheWays : off+cacheWays]
	}
	if set[3] == 0 {
		c.live++
	}
	if line < c.minLine {
		c.minLine = line
	}
	if line > c.maxLine {
		c.maxLine = line
	}
	c.sig |= sigBit(line)
	set[3] = set[2]
	set[2] = set[1]
	set[1] = set[0]
	set[0] = t
	return false
}

// set returns the cacheWays-long tag slice of line's set (possibly the
// read-only zero chunk; callers that mutate must hold the tag, which
// implies a materialized chunk).
func (c *cache) set(line uint64) []uint32 {
	base := c.setOf(line) * cacheWays
	off := base & (chunkSlots - 1)
	return c.chunks[base>>chunkSlotsLog][off : off+cacheWays : off+cacheWays]
}

// present reports whether line is cached, without touching LRU state.
func (c *cache) present(line uint64) bool {
	set := c.set(line)
	t := uint32(line) + 1
	for w := 0; w < cacheWays; w++ {
		if set[w] == t {
			return true
		}
	}
	return false
}

// invalidate drops line if present, counting a coherence eviction; it
// reports whether the line was actually evicted. An unowned chunk is the
// shared all-invalid zero chunk, so the probe resolves with one bool load —
// the common case when the coherence merge sweeps hundreds of caches.
func (c *cache) invalidate(line uint64) bool {
	if !c.owned[c.setOf(line)*cacheWays>>chunkSlotsLog] {
		return false
	}
	set := c.set(line)
	t := uint32(line) + 1
	for w := 0; w < cacheWays; w++ {
		if set[w] == t {
			// Compact the remaining ways forward.
			copy(set[w:cacheWays-1], set[w+1:cacheWays])
			set[cacheWays-1] = 0
			c.cohEvicts++
			c.live--
			c.gen++
			return true
		}
	}
	return false
}

// flush empties the cache (used between experiment repetitions) by
// re-aliasing every materialized chunk to the shared zero chunk, returning
// the private copies to the allocator.
func (c *cache) flush() {
	c.gen++
	for i, own := range c.owned {
		if own {
			c.chunks[i] = zeroChunk[:len(c.chunks[i])]
			c.owned[i] = false
		}
	}
	c.cohEvicts = 0
	c.live = 0
	c.minLine = ^uint64(0)
	c.maxLine = 0
	c.sig = 0
}
