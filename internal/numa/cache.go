// Package numa models the Origin2000 memory system: physically distributed
// memory with page-granularity placement, per-processor caches, and a
// deterministic release-consistency coherence model.
//
// Data lives in ordinary Go slices (so applications compute real results);
// the package's job is to charge virtual time for every access according to
// where the touched page is homed and whether the line is cached. Coherence
// is resolved at synchronization points: each shared array records the cache
// lines written per processor during an epoch, and at a barrier (or lock
// hand-off) those write-sets invalidate the line in every other processor's
// cache. Because invalidations happen only at synchronization-ordered points,
// the cost model is deterministic — identical on every run — while still
// capturing the communication-to-computation behaviour that drives CC-SAS
// performance: placement locality, cache reuse, and coherence misses on
// actively shared data.
package numa

// cacheWays is the set associativity. The R10000's secondary cache was
// 2-way; we use 4-way LRU so that the simulator's page-aligned allocation
// pattern does not manufacture conflict pathologies the real (physically
// indexed, OS-page-coloured) machine avoided.
const cacheWays = 4

// cache is a set-associative, line-tagged cache simulator with LRU
// replacement. It tracks only tags (presence), not data — data correctness
// is handled by the real Go slices. A cache is owned by exactly one
// processor goroutine; the coherence merge touches it only while that
// processor is blocked at a barrier.
type cache struct {
	tags      []uint64 // cacheWays tags per set, LRU-ordered (way 0 = MRU); 0 = invalid
	setMask   uint64
	setBits   uint // log2(number of sets)
	lineShift uint
	cohEvicts uint64 // lines invalidated by coherence since last reset
}

func newCache(cacheBytes, lineBytes int) *cache {
	sets := cacheBytes / lineBytes / cacheWays
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for masking.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	bits := uint(0)
	for 1<<bits < sets {
		bits++
	}
	if bits == 0 {
		bits = 1 // avoid zero shifts when there is a single set
	}
	return &cache{
		tags:      make([]uint64, sets*cacheWays),
		setMask:   uint64(sets - 1),
		setBits:   bits,
		lineShift: shift,
	}
}

// setOf maps a line address to its set. The index XOR-folds higher address
// bits into the set bits — the deterministic stand-in for the physical page
// colouring real operating systems use, which keeps the simulator's
// page-aligned, power-of-two-strided allocations from aliasing into the
// same sets.
func (c *cache) setOf(line uint64) uint64 {
	return (line ^ line>>c.setBits ^ line>>(2*c.setBits)) & c.setMask
}

// access looks line up and installs it as MRU; reports whether it was a hit.
func (c *cache) access(line uint64) bool {
	base := c.setOf(line) * cacheWays
	set := c.tags[base : base+cacheWays]
	t := line + 1
	for w := 0; w < cacheWays; w++ {
		if set[w] == t {
			// Hit: move to front (LRU update).
			copy(set[1:w+1], set[:w])
			set[0] = t
			return true
		}
	}
	// Miss: evict LRU (last way), install as MRU.
	copy(set[1:], set[:cacheWays-1])
	set[0] = t
	return false
}

// present reports whether line is cached, without touching LRU state.
func (c *cache) present(line uint64) bool {
	base := int(c.setOf(line) * cacheWays)
	t := line + 1
	for w := 0; w < cacheWays; w++ {
		if c.tags[base+w] == t {
			return true
		}
	}
	return false
}

// invalidate drops line if present, counting a coherence eviction; it
// reports whether the line was actually evicted.
func (c *cache) invalidate(line uint64) bool {
	base := int(c.setOf(line) * cacheWays)
	t := line + 1
	for w := 0; w < cacheWays; w++ {
		if c.tags[base+w] == t {
			// Compact the remaining ways forward.
			copy(c.tags[base+w:base+cacheWays-1], c.tags[base+w+1:base+cacheWays])
			c.tags[base+cacheWays-1] = 0
			c.cohEvicts++
			return true
		}
	}
	return false
}

// flush empties the cache (used between experiment repetitions).
func (c *cache) flush() {
	clear(c.tags)
	c.cohEvicts = 0
}
