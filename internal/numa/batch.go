package numa

// Batched costed access (DESIGN.md §5.9). The entry points here charge a
// whole sequence of element accesses with one Advance instead of one per
// element. Each helper performs its accesses in exactly the order the
// equivalent element-at-a-time loop would — same cache probes, same LRU
// movement, same write-set records — so the final cache state, counters, and
// virtual time are identical to the unbatched loop (within one phase, latency
// and counter sums are order-independent). The differential test in
// ref_test.go proves every helper against the division-based reference model.
//
// Under refModel every helper degrades to a chargeRef-per-element loop in the
// same access order, exactly like Load/Store/TouchRange.

import (
	"fmt"

	"o2k/internal/sim"
)

// Num constrains the element types the accumulate helpers (AddIdx, AddGather)
// can combine with +.
type Num interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// chargeSlowAcc is chargeSlow for the batched paths: identical probe, counter,
// and write-set behaviour, but the latency is returned for the caller to
// accumulate into a single Advance instead of being charged immediately.
func (a *Array[T]) chargeSlowAcc(p *sim.Proc, c *cache, base, gl uint64, li uint32, write bool) sim.Time {
	me := p.ID()
	var lat sim.Time
	if c.mruHit(base, gl) || c.accessSlow(base, gl) {
		p.CacheHits++
		lat = a.cacheHitNS
	} else {
		a.noteInstall(me, li)
		sn := a.procNode[me]
		hn := a.procNode[a.pageHome[li>>a.pageOverLine]]
		if sn == hn {
			p.LocalMisses++
		} else {
			p.RemoteMisses++
		}
		lat = a.nodeLat[int(sn)*a.nodes+int(hn)]
	}
	if write && a.shared {
		a.recordWrite(me, li)
	}
	a.last[me] = lastRef{gl + 1, c.gen}
	return lat
}

// chargeAcc performs one costed access for the multi-array batch helpers,
// accumulating latency into *lat. It repeats the Load/Store fast paths (see
// the charge comment in array.go: the copies must stay in sync).
func (a *Array[T]) chargeAcc(p *sim.Proc, c *cache, li uint32, write bool, lat *sim.Time) {
	me := p.ID()
	gl := a.baseLine + uint64(li)
	lr := &a.last[me]
	if lr.line == gl+1 && lr.gen == c.gen && !(write && a.shared) {
		p.CacheHits++
		*lat += a.cacheHitNS
		return
	}
	base := c.setBase(gl)
	if (write && a.shared) || !c.mruHit(base, gl) {
		*lat += a.chargeSlowAcc(p, c, base, gl, li, write)
		return
	}
	p.CacheHits++
	*lat += a.cacheHitNS
	lr.line, lr.gen = gl+1, c.gen
}

// GatherIdx copies element idx[k] into out[k] for every k, charging each read
// like Load but with one Advance for the whole gather. out must hold at least
// len(idx) elements.
func (a *Array[T]) GatherIdx(p *sim.Proc, idx []int32, out []T) {
	if len(idx) == 0 {
		return
	}
	out = out[:len(idx)]
	if refModel {
		for k, ix := range idx {
			a.chargeRef(p, a.lineOf(int(ix)), false)
			out[k] = a.data[ix]
		}
		return
	}
	me := p.ID()
	c := a.caches[me]
	lr := &a.last[me]
	var lat sim.Time
	var hits uint64
	for k, ix := range idx {
		i := int(ix)
		li := a.lineOf(i)
		gl := a.baseLine + uint64(li)
		if lr.line == gl+1 && lr.gen == c.gen {
			hits++
			lat += a.cacheHitNS
		} else if base := c.setBase(gl); c.mruHit(base, gl) {
			hits++
			lat += a.cacheHitNS
			lr.line, lr.gen = gl+1, c.gen
		} else {
			lat += a.chargeSlowAcc(p, c, base, gl, li, false)
		}
		out[k] = a.data[i]
	}
	p.CacheHits += hits
	p.Advance(lat)
}

// ScatterIdx stores vals[k] into element idx[k] for every k, charging each
// write like Store but with one Advance for the whole scatter.
func (a *Array[T]) ScatterIdx(p *sim.Proc, idx []int32, vals []T) {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("numa: ScatterIdx index/value length mismatch (%d vs %d)", len(idx), len(vals)))
	}
	if len(idx) == 0 {
		return
	}
	if refModel {
		for k, ix := range idx {
			a.chargeRef(p, a.lineOf(int(ix)), true)
			a.data[ix] = vals[k]
		}
		return
	}
	me := p.ID()
	c := a.caches[me]
	lr := &a.last[me]
	var lat sim.Time
	var hits uint64
	for k, ix := range idx {
		i := int(ix)
		li := a.lineOf(i)
		gl := a.baseLine + uint64(li)
		if !a.shared && lr.line == gl+1 && lr.gen == c.gen {
			hits++
			lat += a.cacheHitNS
		} else if base := c.setBase(gl); !a.shared && c.mruHit(base, gl) {
			hits++
			lat += a.cacheHitNS
			lr.line, lr.gen = gl+1, c.gen
		} else {
			lat += a.chargeSlowAcc(p, c, base, gl, li, true)
		}
		a.data[i] = vals[k]
	}
	p.CacheHits += hits
	p.Advance(lat)
}

// FillIdx stores v into every element named by idx, charging each write like
// Store with one Advance for the batch — the indexed sibling of Fill.
func (a *Array[T]) FillIdx(p *sim.Proc, idx []int32, v T) {
	if len(idx) == 0 {
		return
	}
	if refModel {
		for _, ix := range idx {
			a.chargeRef(p, a.lineOf(int(ix)), true)
			a.data[ix] = v
		}
		return
	}
	me := p.ID()
	c := a.caches[me]
	lr := &a.last[me]
	var lat sim.Time
	var hits uint64
	for _, ix := range idx {
		i := int(ix)
		li := a.lineOf(i)
		gl := a.baseLine + uint64(li)
		if !a.shared && lr.line == gl+1 && lr.gen == c.gen {
			hits++
			lat += a.cacheHitNS
		} else if base := c.setBase(gl); !a.shared && c.mruHit(base, gl) {
			hits++
			lat += a.cacheHitNS
			lr.line, lr.gen = gl+1, c.gen
		} else {
			lat += a.chargeSlowAcc(p, c, base, gl, li, true)
		}
		a.data[i] = v
	}
	p.CacheHits += hits
	p.Advance(lat)
}

// AddIdx adds vals[k] to element idx[k] for every k. Per element it charges a
// read then a write of the same element — exactly the
// a.Store(p, i, a.Load(p, i)+v) sequence it replaces.
func AddIdx[T Num](p *sim.Proc, a *Array[T], idx []int32, vals []T) {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("numa: AddIdx index/value length mismatch (%d vs %d)", len(idx), len(vals)))
	}
	if refModel {
		for k, ix := range idx {
			li := a.lineOf(int(ix))
			a.chargeRef(p, li, false)
			a.chargeRef(p, li, true)
			a.data[ix] += vals[k]
		}
		return
	}
	me := p.ID()
	c := a.caches[me]
	var lat sim.Time
	for k, ix := range idx {
		li := a.lineOf(int(ix))
		a.chargeAcc(p, c, li, false, &lat)
		a.chargeAcc(p, c, li, true, &lat)
		a.data[ix] += vals[k]
	}
	p.Advance(lat)
}

// AddGather adds src[srcOff+k] to dst element idx[k] for every k. Both arrays
// must belong to the same Space. Per element the access order is dst read,
// src read, dst write — exactly the
// dst.Store(p, i, dst.Load(p, i)+src.Load(p, srcOff+k)) sequence it replaces.
func AddGather[T Num](p *sim.Proc, dst *Array[T], idx []int32, src *Array[T], srcOff int) {
	if dst.sp != src.sp {
		panic("numa: AddGather arrays from different spaces")
	}
	if refModel {
		for k, ix := range idx {
			li := dst.lineOf(int(ix))
			dst.chargeRef(p, li, false)
			src.chargeRef(p, src.lineOf(srcOff+k), false)
			dst.chargeRef(p, li, true)
			dst.data[ix] += src.data[srcOff+k]
		}
		return
	}
	me := p.ID()
	c := dst.caches[me]
	var lat sim.Time
	for k, ix := range idx {
		li := dst.lineOf(int(ix))
		dst.chargeAcc(p, c, li, false, &lat)
		src.chargeAcc(p, c, src.lineOf(srcOff+k), false, &lat)
		dst.chargeAcc(p, c, li, true, &lat)
		dst.data[ix] += src.data[srcOff+k]
	}
	p.Advance(lat)
}

// PackIdx copies src element idx[k] into dst element dstOff+k for every k
// (both arrays in the same Space). Per element: src read, then dst write —
// the dst.Store(p, dstOff+k, src.Load(p, i)) staging-buffer idiom.
func PackIdx[T any](p *sim.Proc, dst *Array[T], dstOff int, src *Array[T], idx []int32) {
	if dst.sp != src.sp {
		panic("numa: PackIdx arrays from different spaces")
	}
	if refModel {
		for k, ix := range idx {
			src.chargeRef(p, src.lineOf(int(ix)), false)
			dst.chargeRef(p, dst.lineOf(dstOff+k), true)
			dst.data[dstOff+k] = src.data[ix]
		}
		return
	}
	me := p.ID()
	c := dst.caches[me]
	var lat sim.Time
	for k, ix := range idx {
		src.chargeAcc(p, c, src.lineOf(int(ix)), false, &lat)
		dst.chargeAcc(p, c, dst.lineOf(dstOff+k), true, &lat)
		dst.data[dstOff+k] = src.data[ix]
	}
	p.Advance(lat)
}

// GatherFields packs, for every index idx[k], one element from each of srcs
// (field-major within the element: srcs[0][i], srcs[1][i], ...) into
// out[len(srcs)*k+f] — the AoS migration-record gather all three adaptive-mesh
// models perform, batched. All arrays must share one Space.
func GatherFields[T any](p *sim.Proc, srcs []*Array[T], idx []int32, out []T) {
	nf := len(srcs)
	if len(out) < nf*len(idx) {
		panic("numa: GatherFields output too short")
	}
	if refModel {
		for k, ix := range idx {
			for f, a := range srcs {
				a.chargeRef(p, a.lineOf(int(ix)), false)
				out[nf*k+f] = a.data[ix]
			}
		}
		return
	}
	me := p.ID()
	c := srcs[0].caches[me]
	var lat sim.Time
	for k, ix := range idx {
		i := int(ix)
		for f, a := range srcs {
			a.chargeAcc(p, c, a.lineOf(i), false, &lat)
			out[nf*k+f] = a.data[i]
		}
	}
	p.Advance(lat)
}

// ScatterFields is the receive side of GatherFields: vals[len(dsts)*k+f] is
// stored into dsts[f] element idx[k], field-major per element.
func ScatterFields[T any](p *sim.Proc, dsts []*Array[T], idx []int32, vals []T) {
	nf := len(dsts)
	if len(vals) < nf*len(idx) {
		panic("numa: ScatterFields values too short")
	}
	if refModel {
		for k, ix := range idx {
			for f, a := range dsts {
				a.chargeRef(p, a.lineOf(int(ix)), true)
				a.data[ix] = vals[nf*k+f]
			}
		}
		return
	}
	me := p.ID()
	c := dsts[0].caches[me]
	var lat sim.Time
	for k, ix := range idx {
		i := int(ix)
		for f, a := range dsts {
			a.chargeAcc(p, c, a.lineOf(i), true, &lat)
			a.data[i] = vals[nf*k+f]
		}
	}
	p.Advance(lat)
}

// CopyFields copies element idx[k] of srcs[f] into element idx[k] of dsts[f]
// for every k, field-major per element (src read then dst write per field) —
// the carry-forward loop that re-seeds kept vertices from the previous cycle's
// arrays. len(dsts) must equal len(srcs); all arrays share one Space.
func CopyFields[T any](p *sim.Proc, dsts, srcs []*Array[T], idx []int32) {
	if len(dsts) != len(srcs) {
		panic(fmt.Sprintf("numa: CopyFields field count mismatch (%d vs %d)", len(dsts), len(srcs)))
	}
	if refModel {
		for _, ix := range idx {
			for f, s := range srcs {
				d := dsts[f]
				s.chargeRef(p, s.lineOf(int(ix)), false)
				d.chargeRef(p, d.lineOf(int(ix)), true)
				d.data[ix] = s.data[ix]
			}
		}
		return
	}
	me := p.ID()
	c := dsts[0].caches[me]
	var lat sim.Time
	for _, ix := range idx {
		i := int(ix)
		for f, s := range srcs {
			d := dsts[f]
			s.chargeAcc(p, c, s.lineOf(i), false, &lat)
			d.chargeAcc(p, c, d.lineOf(i), true, &lat)
			d.data[i] = s.data[i]
		}
	}
	p.Advance(lat)
}

// UnpackFields is ScatterFields reading from a costed staging array instead of
// a host slice: for every k, element src[srcOff+len(dsts)*k+f] is read then
// stored into dsts[f] element idx[k] — the src read/dst write interleaving of
// the SHMEM migration unpack loop.
func UnpackFields[T any](p *sim.Proc, src *Array[T], srcOff int, dsts []*Array[T], idx []int32) {
	nf := len(dsts)
	if refModel {
		for k, ix := range idx {
			for f, a := range dsts {
				src.chargeRef(p, src.lineOf(srcOff+nf*k+f), false)
				a.chargeRef(p, a.lineOf(int(ix)), true)
				a.data[ix] = src.data[srcOff+nf*k+f]
			}
		}
		return
	}
	me := p.ID()
	c := src.caches[me]
	var lat sim.Time
	for k, ix := range idx {
		i := int(ix)
		for f, a := range dsts {
			src.chargeAcc(p, c, src.lineOf(srcOff+nf*k+f), false, &lat)
			a.chargeAcc(p, c, a.lineOf(i), true, &lat)
			a.data[i] = src.data[srcOff+nf*k+f]
		}
	}
	p.Advance(lat)
}

// Load3 reads element i of three arrays of one Space in order, with a single
// Advance — the body-record read (x, y, mass) of the N-body force loop.
func Load3[T any](p *sim.Proc, a1, a2, a3 *Array[T], i int) (T, T, T) {
	if refModel {
		a1.chargeRef(p, a1.lineOf(i), false)
		a2.chargeRef(p, a2.lineOf(i), false)
		a3.chargeRef(p, a3.lineOf(i), false)
		return a1.data[i], a2.data[i], a3.data[i]
	}
	c := a1.caches[p.ID()]
	var lat sim.Time
	a1.chargeAcc(p, c, a1.lineOf(i), false, &lat)
	a2.chargeAcc(p, c, a2.lineOf(i), false, &lat)
	a3.chargeAcc(p, c, a3.lineOf(i), false, &lat)
	p.Advance(lat)
	return a1.data[i], a2.data[i], a3.data[i]
}

// Load3At reads elements i, i+1, i+2 in order with a single Advance — the
// packed cell-record read (cx, cy, mass) of the N-body force loop.
func (a *Array[T]) Load3At(p *sim.Proc, i int) (T, T, T) {
	if refModel {
		a.chargeRef(p, a.lineOf(i), false)
		a.chargeRef(p, a.lineOf(i+1), false)
		a.chargeRef(p, a.lineOf(i+2), false)
		return a.data[i], a.data[i+1], a.data[i+2]
	}
	c := a.caches[p.ID()]
	var lat sim.Time
	a.chargeAcc(p, c, a.lineOf(i), false, &lat)
	a.chargeAcc(p, c, a.lineOf(i+1), false, &lat)
	a.chargeAcc(p, c, a.lineOf(i+2), false, &lat)
	p.Advance(lat)
	return a.data[i], a.data[i+1], a.data[i+2]
}

// Store3At writes elements i, i+1, i+2 in order with a single Advance.
func (a *Array[T]) Store3At(p *sim.Proc, i int, v0, v1, v2 T) {
	if refModel {
		a.chargeRef(p, a.lineOf(i), true)
		a.chargeRef(p, a.lineOf(i+1), true)
		a.chargeRef(p, a.lineOf(i+2), true)
		a.data[i], a.data[i+1], a.data[i+2] = v0, v1, v2
		return
	}
	c := a.caches[p.ID()]
	var lat sim.Time
	a.chargeAcc(p, c, a.lineOf(i), true, &lat)
	a.chargeAcc(p, c, a.lineOf(i+1), true, &lat)
	a.chargeAcc(p, c, a.lineOf(i+2), true, &lat)
	p.Advance(lat)
	a.data[i], a.data[i+1], a.data[i+2] = v0, v1, v2
}

// LoadRange copies elements [lo, hi) into out, charging every element like
// Load with one Advance. Consecutive elements of one line after the first are
// repeat accesses of the MRU way (the line was just probed), so the span path
// probes each line once and adds the remaining accesses arithmetically — the
// TouchRange machinery applied to per-element semantics.
func (a *Array[T]) LoadRange(p *sim.Proc, lo, hi int, out []T) {
	a.rangeCharge(p, lo, hi, false)
	copy(out, a.data[lo:hi])
}

// StoreRange copies vals into elements [lo, lo+len(vals)), charging every
// element like Store with one Advance (span probes as in LoadRange).
func (a *Array[T]) StoreRange(p *sim.Proc, lo int, vals []T) {
	a.rangeCharge(p, lo, lo+len(vals), true)
	copy(a.data[lo:lo+len(vals)], vals)
}

// rangeCharge charges one access per element of [lo, hi) — unlike TouchRange's
// one per line — by probing each line once and accounting the remaining
// accesses of that line as MRU repeats (a probe leaves its line in the MRU
// way, so every subsequent access of the same line is a hit with no LRU
// movement; charging them arithmetically is exact, not an approximation).
func (a *Array[T]) rangeCharge(p *sim.Proc, lo, hi int, write bool) {
	if lo >= hi {
		return
	}
	if refModel {
		for i := lo; i < hi; i++ {
			a.chargeRef(p, a.lineOf(i), write)
		}
		return
	}
	me := p.ID()
	c := a.caches[me]
	lb := uint64(a.sp.M.Cfg.LineBytes)
	if a.elemSize > lb {
		// Oversized elements: per-element charging touches only each element's
		// first line, so the per-line walk below would probe lines the
		// unbatched loop never does. Charge element-at-a-time instead.
		var lat sim.Time
		for i := lo; i < hi; i++ {
			a.chargeAcc(p, c, a.lineOf(i), write, &lat)
		}
		p.Advance(lat)
		return
	}
	sn := a.procNode[me]
	l0, l1 := a.lineOf(lo), a.lineOf(hi-1)
	var lat sim.Time
	var hits, local, remote uint64
	for li := l0; li <= l1; li++ {
		// Elements of this line inside [lo, hi): the next line's first element
		// is ceil((li+1)*lineBytes / elemSize).
		n := uint64(hi - lo)
		if li < l1 {
			first := (uint64(li+1)*lb + a.elemSize - 1) / a.elemSize
			n = first - uint64(lo)
		}
		gl := a.baseLine + uint64(li)
		base := c.setBase(gl)
		if c.mruHit(base, gl) || c.accessSlow(base, gl) {
			hits++
			lat += a.cacheHitNS
		} else {
			a.noteInstall(me, li)
			hn := a.procNode[a.pageHome[li>>a.pageOverLine]]
			if sn == hn {
				local++
			} else {
				remote++
			}
			lat += a.nodeLat[int(sn)*a.nodes+int(hn)]
		}
		if n > 1 {
			hits += n - 1
			lat += sim.Time(n-1) * a.cacheHitNS
		}
		lo += int(n)
	}
	p.CacheHits += hits
	p.LocalMisses += local
	p.RemoteMisses += remote
	p.Advance(lat)
	if write && a.shared {
		a.recordWriteRange(me, l0, l1)
	}
	a.last[me] = lastRef{a.baseLine + uint64(l1) + 1, c.gen}
}
