package numa

import (
	"testing"

	"o2k/internal/sim"
)

// Host-performance microbenchmarks of the memory-system simulator: these
// bound how much simulated work a real second buys.

func BenchmarkLoadHit(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 1024)
	p := g.Proc(0)
	a.Load(p, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Load(p, 0)
	}
}

func BenchmarkLoadStream(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 1<<16)
	p := g.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Load(p, i&(1<<16-1))
	}
}

func BenchmarkStoreSharedTracked(b *testing.B) {
	sp, _ := space(4)
	g := sim.NewGroup(4)
	a := NewShared[float64](sp, 1<<16)
	p := g.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Store(p, i&(1<<16-1), 1)
	}
}

func BenchmarkMergeEpoch(b *testing.B) {
	sp, _ := space(8)
	g := sim.NewGroup(8)
	a := NewShared[float64](sp, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for q := 0; q < 8; q++ {
			p := g.Proc(q)
			for k := 0; k < 256; k++ {
				a.Store(p, (q*256+k)*16%(1<<14), 1)
			}
		}
		b.StartTimer()
		sp.MergeEpoch()
	}
}

func BenchmarkTouchRange(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 1<<16)
	p := g.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TouchRange(p, 0, 1<<12, false)
	}
}
