package numa

import (
	"testing"

	"o2k/internal/sim"
)

// Host-performance microbenchmarks of the memory-system simulator: these
// bound how much simulated work a real second buys.

func BenchmarkLoadHit(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 1024)
	p := g.Proc(0)
	a.Load(p, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Load(p, 0)
	}
}

func BenchmarkLoadStream(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 1<<16)
	p := g.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Load(p, i&(1<<16-1))
	}
}

func BenchmarkStoreSharedTracked(b *testing.B) {
	sp, _ := space(4)
	g := sim.NewGroup(4)
	a := NewShared[float64](sp, 1<<16)
	p := g.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Store(p, i&(1<<16-1), 1)
	}
}

func BenchmarkMergeEpoch(b *testing.B) {
	sp, _ := space(8)
	g := sim.NewGroup(8)
	a := NewShared[float64](sp, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for q := 0; q < 8; q++ {
			p := g.Proc(q)
			for k := 0; k < 256; k++ {
				a.Store(p, (q*256+k)*16%(1<<14), 1)
			}
		}
		b.StartTimer()
		sp.MergeEpoch()
	}
}

func BenchmarkTouchRange(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	a := NewPrivate[float64](sp, 0, 1<<16)
	p := g.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TouchRange(p, 0, 1<<12, false)
	}
}

// BenchmarkReplayLoads charges a walk-shaped trace (a cell read followed by
// a burst of leaf loads, repeated) through the four-cursor batched replay —
// the barnes force phase's hot loop.
func BenchmarkReplayLoads(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	x := NewPrivate[float64](sp, 0, 4096)
	y := NewPrivate[float64](sp, 0, 4096)
	m := NewPrivate[float64](sp, 0, 4096)
	cl := NewPrivate[float64](sp, 0, 3*512)
	var tr []int32
	for c := 0; c < 512; c++ {
		tr = append(tr, int32(^c))
		for j := 0; j < 6; j++ {
			tr = append(tr, int32((c*11+j*3)%4096))
		}
	}
	p := g.Proc(0)
	cx, cy, cm, cc := x.Cursor(p), y.Cursor(p), m.Cursor(p), cl.Cursor(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReplayLoads(tr, &cx, &cy, &cm, &cc)
	}
	b.StopTimer()
	cx.Flush()
	cy.Flush()
	cm.Flush()
	cc.Flush()
}

// BenchmarkLoadArmSweep runs the stencil inner loop's access shape: three
// concurrent line streams of one array, each carried by its own Arm memo
// (the per-proc memo alone would thrash on this pattern).
func BenchmarkLoadArmSweep(b *testing.B) {
	sp, _ := space(1)
	g := sim.NewGroup(1)
	const n = 4096
	a := NewPrivate[float64](sp, 0, 3*n)
	p := g.Proc(0)
	cu := a.Cursor(p)
	var up, down, row Arm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		_ = cu.LoadArm(&up, j) + cu.LoadArm(&down, n+j) + cu.LoadArm(&row, 2*n+j)
	}
	b.StopTimer()
	cu.Flush()
}

// BenchmarkMergeEpochWide is the merge at scale: 64 caches with disjoint
// per-proc write blocks, where the per-(array, proc) install ranges and
// occupancy signatures let each writer skip the 63 caches that never held
// its lines.
func BenchmarkMergeEpochWide(b *testing.B) {
	const procs = 64
	sp, _ := space(procs)
	g := sim.NewGroup(procs)
	a := NewShared[float64](sp, procs*4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for q := 0; q < procs; q++ {
			p := g.Proc(q)
			for k := 0; k < 64; k++ {
				a.Store(p, q*4096+k*8, 1)
			}
		}
		b.StartTimer()
		sp.MergeEpoch()
	}
}
