package numa

import (
	"testing"
	"testing/quick"

	"o2k/internal/sim"
)

func TestRehomeByElem(t *testing.T) {
	sp, _ := space(4)
	a := NewShared[float64](sp, 8192) // 4 pages at 16KB/8B
	a.PlaceUniform(0)
	moved := a.RehomeByElem(func(e int) int { return (e / 2048) % 4 })
	if moved != 3 { // page 0 stays on proc 0
		t.Fatalf("moved %d pages, want 3", moved)
	}
	// Re-homing to the same layout moves nothing.
	if again := a.RehomeByElem(func(e int) int { return (e / 2048) % 4 }); again != 0 {
		t.Fatalf("idempotent rehome moved %d", again)
	}
	for pg := 0; pg < 4; pg++ {
		if a.Home(pg*2048) != pg {
			t.Fatalf("page %d home %d", pg, a.Home(pg*2048))
		}
	}
}

func TestMultipleSharedArraysMergeIndependently(t *testing.T) {
	sp, _ := space(2)
	g := sim.NewGroup(2)
	a := NewShared[float64](sp, 256)
	b := NewShared[float64](sp, 256)
	p0, p1 := g.Proc(0), g.Proc(1)
	// p1 caches line 0 of both arrays.
	a.Load(p1, 0)
	b.Load(p1, 0)
	// p0 writes only array a.
	a.Store(p0, 0, 1)
	pen := sp.MergeEpoch()
	if pen[1] == 0 {
		t.Fatal("no invalidation penalty for a-line")
	}
	// b's line must have survived in p1's cache.
	hits := p1.CacheHits
	b.Load(p1, 0)
	if p1.CacheHits != hits+1 {
		t.Fatal("unwritten array's line was invalidated")
	}
}

func TestLineRangeCoversArrayContiguously(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16)%5000 + 1
		sp, _ := space(1)
		a := NewPrivate[float64](sp, 0, n)
		lo, hi := a.LineRange(0, n)
		if hi <= lo {
			return false
		}
		// Adjacent element ranges produce adjacent or identical line ranges.
		mid := n / 2
		if mid == 0 {
			return true
		}
		_, h1 := a.LineRange(0, mid)
		l2, _ := a.LineRange(mid, n)
		return l2 == h1 || l2 == h1-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccessDeterminism(t *testing.T) {
	// Full SPMD run with shared data under the race detector and with
	// virtual-time comparison across repetitions.
	run := func() sim.Time {
		sp, _ := space(8)
		g := sim.NewGroup(8)
		a := NewShared[float64](sp, 16384)
		a.PlaceBlock()
		bar := sim.NewBarrierHook(8, nil, sp.MergeEpoch)
		g.Run(func(p *sim.Proc) {
			me := p.ID()
			for iter := 0; iter < 5; iter++ {
				lo, hi := me*2048, (me+1)*2048
				for v := lo; v < hi; v += 7 {
					a.Store(p, v, float64(v+iter))
				}
				bar.Wait(p)
				peer := (me + 3) % 8
				a.TouchRange(p, peer*2048, peer*2048+512, false)
				bar.Wait(p)
			}
		})
		return g.MaxTime()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("concurrent shared access nondeterministic: %v vs %v", a, b)
	}
}

func TestZeroLengthArray(t *testing.T) {
	sp, _ := space(1)
	a := NewPrivate[float64](sp, 0, 0)
	if a.Len() != 0 || a.Bytes() != 0 {
		t.Fatal("zero array dims wrong")
	}
	if lo, hi := a.LineRange(0, 0); lo != 0 || hi != 0 {
		t.Fatal("zero array line range wrong")
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	sp, _ := space(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPrivate[float64](sp, 0, -1)
}

func TestFlushCaches(t *testing.T) {
	sp, _ := space(2)
	g := sim.NewGroup(2)
	a := NewPrivate[float64](sp, 0, 64)
	p := g.Proc(0)
	a.Load(p, 0)
	a.Load(p, 0)
	if p.CacheHits != 1 {
		t.Fatal("warm hit expected")
	}
	sp.FlushCaches()
	misses := p.LocalMisses
	a.Load(p, 0)
	if p.LocalMisses != misses+1 {
		t.Fatal("flush did not cool the cache")
	}
}

func TestStructElementArrays(t *testing.T) {
	type particle struct {
		X, Y, M float64
	}
	sp, _ := space(2)
	g := sim.NewGroup(2)
	a := NewPrivate[particle](sp, 0, 100)
	p := g.Proc(0)
	a.Store(p, 3, particle{X: 1, Y: 2, M: 3})
	got := a.Load(p, 3)
	if got.Y != 2 {
		t.Fatalf("struct element corrupted: %+v", got)
	}
	if a.Bytes() != 100*24 {
		t.Fatalf("struct sizing wrong: %d", a.Bytes())
	}
}
