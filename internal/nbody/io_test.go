package nbody

// Round-trip and corruption properties of the quadtree codec.

import (
	"reflect"
	"testing"

	"o2k/internal/planio"
)

func TestTreeRoundTripDeepEqual(t *testing.T) {
	b := NewPlummer(300, 1)
	tree := Build(b)
	var pw planio.Writer
	tree.AppendTo(&pw)
	s := planio.NewScanner(pw.Bytes())
	tree2, err := DecodeTreeFrom(s, b.N())
	if err != nil {
		t.Fatal(err)
	}
	s.Done()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree, tree2) {
		t.Fatal("tree round trip is not DeepEqual")
	}
	// The leaf/internal distinction (nil vs non-nil Bodies) must survive —
	// IsLeaf derives from it.
	for i := range tree.Cells {
		if (tree.Cells[i].Bodies == nil) != (tree2.Cells[i].Bodies == nil) {
			t.Fatalf("cell %d leaf-ness changed across the round trip", i)
		}
	}
}

// Any single bit flip must decode to an error or a value — never a panic.
func TestTreeDecodeBitFlipsNeverPanic(t *testing.T) {
	b := NewPlummer(300, 1)
	var pw planio.Writer
	Build(b).AppendTo(&pw)
	data := pw.Bytes()
	step := len(data)/200 + 1
	for pos := 0; pos < len(data); pos += step {
		c := append([]byte(nil), data...)
		c[pos] ^= 1 << (pos % 8)
		DecodeTreeFrom(planio.NewScanner(c), b.N()) // must not panic
	}
}
