package nbody

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlummerDeterministic(t *testing.T) {
	a := NewPlummer(256, 42)
	b := NewPlummer(256, 42)
	for i := 0; i < 256; i++ {
		if a.X[i] != b.X[i] || a.VY[i] != b.VY[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := NewPlummer(256, 43)
	same := true
	for i := 0; i < 256; i++ {
		if a.X[i] != c.X[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical bodies")
	}
}

func TestPlummerMassNormalized(t *testing.T) {
	b := NewPlummer(1000, 1)
	total := 0.0
	for _, m := range b.M {
		total += m
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("total mass %v", total)
	}
}

func TestBoundsContainAll(t *testing.T) {
	b := NewPlummer(512, 7)
	x0, y0, size := b.Bounds()
	for i := 0; i < b.N(); i++ {
		if b.X[i] < x0 || b.X[i] >= x0+size || b.Y[i] < y0 || b.Y[i] >= y0+size {
			t.Fatalf("body %d outside bounds", i)
		}
	}
}

func TestMortonOrdering(t *testing.T) {
	// Interleave must be monotone per dimension and distinguish quadrants.
	if interleave(0) != 0 || interleave(1) != 1 || interleave(2) != 4 || interleave(3) != 5 {
		t.Fatal("interleave wrong")
	}
	b := &Bodies{X: []float64{0.1, 0.9}, Y: []float64{0.1, 0.9}, M: []float64{1, 1},
		VX: make([]float64, 2), VY: make([]float64, 2)}
	x0, y0, s := b.Bounds()
	if b.MortonKey(0, x0, y0, s) >= b.MortonKey(1, x0, y0, s) {
		t.Fatal("morton order violated")
	}
}

func TestTreeStructure(t *testing.T) {
	b := NewPlummer(1000, 3)
	tr := Build(b)
	// Every body appears in exactly one leaf.
	seen := make([]int, b.N())
	for c := range tr.Cells {
		for _, i := range tr.Cells[c].Bodies {
			seen[i]++
		}
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("body %d in %d leaves", i, s)
		}
	}
	// Root mass equals total mass.
	if math.Abs(tr.Cells[tr.Root].CM-1) > 1e-9 {
		t.Fatalf("root mass %v", tr.Cells[tr.Root].CM)
	}
	// Leaf sizes bounded.
	for c := range tr.Cells {
		if tr.Cells[c].Bodies != nil && len(tr.Cells[c].Bodies) > LeafCap {
			t.Fatalf("leaf with %d bodies", len(tr.Cells[c].Bodies))
		}
	}
}

func TestTreeDeterministic(t *testing.T) {
	b := NewPlummer(500, 9)
	t1 := Build(b)
	t2 := Build(b)
	if t1.NumCells() != t2.NumCells() {
		t.Fatal("cell counts differ")
	}
	for c := range t1.Cells {
		if t1.Cells[c].CX != t2.Cells[c].CX || t1.Cells[c].Child != t2.Cells[c].Child {
			t.Fatalf("cell %d differs", c)
		}
	}
}

func TestAccelMatchesBruteForceLooseTheta(t *testing.T) {
	// With theta=0 the traversal never opens by approximation: it must equal
	// the direct O(N²) sum.
	b := NewPlummer(200, 5)
	tr := Build(b)
	for _, i := range []int32{0, 57, 199} {
		ax, ay, _ := tr.DirectAccel(b, i, 0)
		var bx, by float64
		for j := 0; j < b.N(); j++ {
			if int32(j) == i {
				continue
			}
			dx, dy := b.X[j]-b.X[i], b.Y[j]-b.Y[i]
			d2 := dx*dx + dy*dy + Soft2
			inv := 1 / (d2 * math.Sqrt(d2))
			bx += G * b.M[j] * dx * inv
			by += G * b.M[j] * dy * inv
		}
		if math.Abs(ax-bx) > 1e-9*math.Max(1, math.Abs(bx)) ||
			math.Abs(ay-by) > 1e-9*math.Max(1, math.Abs(by)) {
			t.Fatalf("body %d: tree (%v,%v) vs direct (%v,%v)", i, ax, ay, bx, by)
		}
	}
}

func TestAccelApproximationReasonable(t *testing.T) {
	b := NewPlummer(500, 11)
	tr := Build(b)
	var errSum, magSum float64
	for i := int32(0); i < 100; i++ {
		ax, ay, _ := tr.DirectAccel(b, i, ThetaBH)
		ex, ey, _ := tr.DirectAccel(b, i, 0)
		errSum += math.Hypot(ax-ex, ay-ey)
		magSum += math.Hypot(ex, ey)
	}
	if errSum/magSum > 0.05 {
		t.Fatalf("BH relative error %v too large", errSum/magSum)
	}
}

func TestAccelFewerInteractionsWithTheta(t *testing.T) {
	b := NewPlummer(2000, 13)
	tr := Build(b)
	_, _, exact := tr.DirectAccel(b, 0, 0)
	_, _, approx := tr.DirectAccel(b, 0, ThetaBH)
	if approx >= exact {
		t.Fatalf("theta did not prune: %d vs %d", approx, exact)
	}
	if approx < 10 {
		t.Fatalf("suspiciously few interactions: %d", approx)
	}
}

func TestCostZones(t *testing.T) {
	b := NewPlummer(4000, 17)
	cost := make([]float64, b.N())
	for i := range cost {
		cost[i] = 1
	}
	part := CostZones(b, cost, 8)
	counts := make([]int, 8)
	for _, p := range part {
		if p < 0 || p >= 8 {
			t.Fatalf("part %d out of range", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 350 || c > 650 {
			t.Fatalf("zone %d has %d bodies (poor balance)", p, c)
		}
	}
}

func TestCostZonesWeighted(t *testing.T) {
	b := NewPlummer(1000, 19)
	cost := make([]float64, b.N())
	for i := range cost {
		cost[i] = 1
	}
	cost[0] = 500 // one very expensive body
	part := CostZones(b, cost, 4)
	// The expensive body's zone should hold far fewer bodies.
	zone := part[0]
	count := 0
	for _, p := range part {
		if p == zone {
			count++
		}
	}
	if count > 400 {
		t.Fatalf("cost-zones ignored weights: %d bodies share the heavy zone", count)
	}
}

func TestStepConservesSanity(t *testing.T) {
	b := NewPlummer(500, 23)
	ax := make([]float64, b.N())
	ay := make([]float64, b.N())
	inter := make([]int, b.N())
	e0 := b.Energy()
	for s := 0; s < 5; s++ {
		tr := Build(b)
		Step(b, tr, ThetaBH, ax, ay, inter)
	}
	e1 := b.Energy()
	if math.IsNaN(e1) || e1 > 50*(e0+1) {
		t.Fatalf("energy blew up: %v -> %v", e0, e1)
	}
	if b.Checksum() == 0 {
		t.Fatal("zero checksum")
	}
}

func TestStepDeterministic(t *testing.T) {
	run := func() float64 {
		b := NewPlummer(300, 29)
		ax := make([]float64, b.N())
		ay := make([]float64, b.N())
		inter := make([]int, b.N())
		for s := 0; s < 3; s++ {
			Step(b, Build(b), ThetaBH, ax, ay, inter)
		}
		return b.Checksum()
	}
	if run() != run() {
		t.Fatal("reference step nondeterministic")
	}
}

func TestInterleaveProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		// Interleaved keys must preserve per-dimension ordering when the
		// other dimension is fixed.
		if a == b {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return interleave(uint32(lo)) < interleave(uint32(hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
