package nbody

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: for any deterministic body set, every body lands in exactly one
// leaf and the root aggregates the full mass.
func TestTreePropertyRandomSets(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16)%900 + 10
		b := NewPlummer(n, seed)
		tr := Build(b)
		seen := make([]int, n)
		for c := range tr.Cells {
			for _, i := range tr.Cells[c].Bodies {
				seen[i]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		total := 0.0
		for _, m := range b.M {
			total += m
		}
		return math.Abs(tr.Cells[tr.Root].CM-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: cost zones are contiguous in Morton order — no zone index ever
// decreases along the sorted key sequence.
func TestCostZonesContiguous(t *testing.T) {
	b := NewPlummer(2000, 31)
	cost := make([]float64, b.N())
	for i := range cost {
		cost[i] = float64(i%13 + 1)
	}
	part := CostZones(b, cost, 7)
	x0, y0, size := b.Bounds()
	type kv struct {
		key uint32
		id  int32
	}
	order := make([]kv, b.N())
	for i := range order {
		order[i] = kv{b.MortonKey(i, x0, y0, size), int32(i)}
	}
	// Insertion sort by (key, id) — mirrors CostZones' ordering.
	for i := 1; i < len(order); i++ {
		x := order[i]
		j := i - 1
		for j >= 0 && (order[j].key > x.key || (order[j].key == x.key && order[j].id > x.id)) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
	last := int32(-1)
	for _, o := range order {
		p := part[o.id]
		if p < last {
			t.Fatalf("zone decreased along morton order: %d after %d", p, last)
		}
		last = p
	}
}

func TestAccelSymmetryTwoBodies(t *testing.T) {
	b := &Bodies{
		X: []float64{0.3, 0.7}, Y: []float64{0.5, 0.5},
		VX: make([]float64, 2), VY: make([]float64, 2),
		M: []float64{0.5, 0.5},
	}
	tr := Build(b)
	ax0, ay0, _ := tr.DirectAccel(b, 0, 0)
	ax1, ay1, _ := tr.DirectAccel(b, 1, 0)
	// Equal masses: forces are equal and opposite.
	if math.Abs(ax0+ax1) > 1e-12 || math.Abs(ay0+ay1) > 1e-12 {
		t.Fatalf("asymmetric forces: (%v,%v) vs (%v,%v)", ax0, ay0, ax1, ay1)
	}
	if ax0 <= 0 {
		t.Fatal("body 0 should be pulled right")
	}
}

func TestCoincidentBodiesSoftened(t *testing.T) {
	// Softening must keep coincident bodies finite (and the tree must not
	// recurse forever thanks to maxDepth).
	b := &Bodies{
		X:  []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		Y:  []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		VX: make([]float64, 9), VY: make([]float64, 9),
		M: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1},
	}
	tr := Build(b)
	ax, ay, _ := tr.DirectAccel(b, 0, ThetaBH)
	if math.IsNaN(ax) || math.IsInf(ax, 0) || math.IsNaN(ay) {
		t.Fatalf("coincident bodies diverged: %v %v", ax, ay)
	}
}

func TestSingleBody(t *testing.T) {
	b := &Bodies{X: []float64{0.5}, Y: []float64{0.5},
		VX: []float64{0}, VY: []float64{0}, M: []float64{1}}
	tr := Build(b)
	ax, ay, inter := tr.DirectAccel(b, 0, ThetaBH)
	if ax != 0 || ay != 0 || inter != 0 {
		t.Fatalf("lone body accelerated: %v %v %d", ax, ay, inter)
	}
	part := CostZones(b, []float64{1}, 4)
	if part[0] < 0 || part[0] >= 4 {
		t.Fatal("single-body partition out of range")
	}
}
