package nbody

import "math"

// LeafCap is the maximum bodies per quadtree leaf.
const LeafCap = 8

// Cell is one quadtree node. Internal cells have Child[q] >= 0 for occupied
// quadrants; leaves carry a slice of body indices. CX/CY/CM are the centre
// of mass and total mass, computed bottom-up in deterministic order.
type Cell struct {
	X0, Y0, Size float64
	Child        [4]int32 // -1 if empty/none
	Bodies       []int32  // leaf payload (nil for internal cells)
	CX, CY, CM   float64
	NBody        int
}

// Tree is a quadtree over a body set.
type Tree struct {
	Cells []Cell
	Root  int32
}

// IsLeaf reports whether cell c is a leaf.
func (t *Tree) IsLeaf(c int32) bool { return t.Cells[c].Bodies != nil || t.Cells[c].NBody == 0 }

// NumCells returns the cell count.
func (t *Tree) NumCells() int { return len(t.Cells) }

// Build constructs the quadtree for the bodies, computing centres of mass
// bottom-up. Construction is deterministic: bodies are inserted in index
// order and children are created in quadrant order.
func Build(b *Bodies) *Tree {
	x0, y0, size := b.Bounds()
	t := &Tree{}
	idx := make([]int32, b.N())
	for i := range idx {
		idx[i] = int32(i)
	}
	t.Root = t.build(b, idx, x0, y0, size, 0)
	return t
}

const maxDepth = 48

func (t *Tree) build(b *Bodies, idx []int32, x0, y0, size float64, depth int) int32 {
	c := int32(len(t.Cells))
	t.Cells = append(t.Cells, Cell{
		X0: x0, Y0: y0, Size: size,
		Child: [4]int32{-1, -1, -1, -1},
		NBody: len(idx),
	})
	if len(idx) <= LeafCap || depth >= maxDepth {
		// Leaf: copy the body list (idx aliases a scratch slice).
		lb := make([]int32, len(idx))
		copy(lb, idx)
		t.Cells[c].Bodies = lb
		t.leafCOM(b, c)
		return c
	}
	half := size / 2
	mx, my := x0+half, y0+half
	// Partition into quadrants (stable: preserves index order).
	var quads [4][]int32
	for _, i := range idx {
		q := 0
		if b.X[i] >= mx {
			q |= 1
		}
		if b.Y[i] >= my {
			q |= 2
		}
		quads[q] = append(quads[q], i)
	}
	for q := 0; q < 4; q++ {
		if len(quads[q]) == 0 {
			continue
		}
		qx := x0
		if q&1 != 0 {
			qx = mx
		}
		qy := y0
		if q&2 != 0 {
			qy = my
		}
		child := t.build(b, quads[q], qx, qy, half, depth+1)
		t.Cells[c].Child[q] = child
	}
	// Centre of mass from children, in quadrant order.
	var sx, sy, sm float64
	for q := 0; q < 4; q++ {
		ch := t.Cells[c].Child[q]
		if ch < 0 {
			continue
		}
		cc := &t.Cells[ch]
		sx += cc.CX * cc.CM
		sy += cc.CY * cc.CM
		sm += cc.CM
	}
	if sm > 0 {
		t.Cells[c].CX = sx / sm
		t.Cells[c].CY = sy / sm
		t.Cells[c].CM = sm
	}
	return c
}

func (t *Tree) leafCOM(b *Bodies, c int32) {
	var sx, sy, sm float64
	for _, i := range t.Cells[c].Bodies {
		sx += b.X[i] * b.M[i]
		sy += b.Y[i] * b.M[i]
		sm += b.M[i]
	}
	if sm > 0 {
		t.Cells[c].CX = sx / sm
		t.Cells[c].CY = sy / sm
		t.Cells[c].CM = sm
	}
}

// BodyReader supplies body positions/masses during traversal; CellReader
// supplies cell centres of mass. The indirection lets each programming
// model charge its own memory-system costs while computing identical
// arithmetic.
type (
	BodyReader func(i int32) (x, y, m float64)
	CellReader func(c int32) (x, y, m float64)
)

// Accel computes the Barnes-Hut acceleration on the body at (bx, by) with
// index self, using opening angle theta. It returns the acceleration and
// the number of interactions evaluated (the load measure that drives
// cost-zones partitioning). Traversal order is deterministic.
func (t *Tree) Accel(self int32, bx, by, theta float64, readBody BodyReader, readCell CellReader) (ax, ay float64, inter int) {
	type frame = int32
	stack := make([]frame, 0, 64)
	stack = append(stack, t.Root)
	tt := theta * theta // hoisted; (theta*theta)*d2 is the original association
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cell := &t.Cells[c]
		if cell.NBody == 0 {
			continue
		}
		if cell.Bodies != nil {
			for _, j := range cell.Bodies {
				if j == self {
					continue
				}
				jx, jy, jm := readBody(j)
				dx, dy := jx-bx, jy-by
				d2 := dx*dx + dy*dy + Soft2
				inv := 1 / (d2 * math.Sqrt(d2))
				ax += G * jm * dx * inv
				ay += G * jm * dy * inv
				inter++
			}
			continue
		}
		cx, cy, cm := readCell(c)
		dx, dy := cx-bx, cy-by
		d2 := dx*dx + dy*dy
		if cell.Size*cell.Size < tt*d2 {
			d2 += Soft2
			inv := 1 / (d2 * math.Sqrt(d2))
			ax += G * cm * dx * inv
			ay += G * cm * dy * inv
			inter++
			continue
		}
		// Push children in reverse quadrant order so they pop in order.
		for q := 3; q >= 0; q-- {
			if ch := cell.Child[q]; ch >= 0 {
				stack = append(stack, ch)
			}
		}
	}
	return ax, ay, inter
}

// DirectAccel returns the reference forces in direct readers (no costing).
func (t *Tree) DirectAccel(b *Bodies, self int32, theta float64) (ax, ay float64, inter int) {
	return t.Accel(self, b.X[self], b.Y[self], theta,
		func(i int32) (float64, float64, float64) { return b.X[i], b.Y[i], b.M[i] },
		func(c int32) (float64, float64, float64) {
			cc := &t.Cells[c]
			return cc.CX, cc.CY, cc.CM
		})
}
