// Package nbody is the hierarchical N-body substrate for the study's second
// adaptive application: a 2-D Barnes-Hut simulation. Its adaptivity
// signature differs from the mesh application — the work distribution
// (interaction counts per body) and the spatial structure (the quadtree)
// shift as the bodies move, forcing cost-based repartitioning every step —
// which is why paradigm-comparison studies in this line always pair an
// adaptive mesh with an N-body code.
//
// Everything is deterministic: body generation uses a fixed-seed generator,
// tree construction and traversal visit children in fixed order, and all
// floating-point reductions are ordered.
package nbody

import (
	"math"
	"math/rand"
)

// Gravitational constant, softening length, and integration step of the
// model problem (dimensionless units).
const (
	G       = 1.0
	Soft2   = 0.0025 // softening² — bounds close-encounter forces
	DT      = 0.01
	ThetaBH = 0.7 // Barnes-Hut opening criterion
)

// Bodies is a structure-of-arrays particle set.
type Bodies struct {
	X, Y   []float64
	VX, VY []float64
	M      []float64
}

// N returns the particle count.
func (b *Bodies) N() int { return len(b.X) }

// Clone deep-copies the particle set.
func (b *Bodies) Clone() *Bodies {
	c := &Bodies{
		X:  append([]float64(nil), b.X...),
		Y:  append([]float64(nil), b.Y...),
		VX: append([]float64(nil), b.VX...),
		VY: append([]float64(nil), b.VY...),
		M:  append([]float64(nil), b.M...),
	}
	return c
}

// NewPlummer generates n bodies in a Plummer-like spherical cluster
// (projected to 2-D) with a deterministic seed. Velocities are small random
// transverse kicks, so the cluster slowly evolves — enough to move work
// between processors step to step.
func NewPlummer(n int, seed int64) *Bodies {
	rng := rand.New(rand.NewSource(seed))
	b := &Bodies{
		X:  make([]float64, n),
		Y:  make([]float64, n),
		VX: make([]float64, n),
		VY: make([]float64, n),
		M:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// Plummer radius sampling: r = a / sqrt(u^{-2/3} - 1).
		u := rng.Float64()*0.99 + 0.005
		r := 0.15 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		if r > 2 {
			r = 2
		}
		phi := rng.Float64() * 2 * math.Pi
		b.X[i] = 0.5 + r*math.Cos(phi)
		b.Y[i] = 0.5 + r*math.Sin(phi)
		// Mild circular motion plus noise.
		v := 0.3 * math.Sqrt(r)
		b.VX[i] = -v*math.Sin(phi) + 0.02*(rng.Float64()-0.5)
		b.VY[i] = v*math.Cos(phi) + 0.02*(rng.Float64()-0.5)
		b.M[i] = 1.0 / float64(n)
	}
	return b
}

// Bounds returns the tight bounding square of the bodies (equal sides, for
// quadtree construction).
func (b *Bodies) Bounds() (x0, y0, size float64) {
	minX, maxX := b.X[0], b.X[0]
	minY, maxY := b.Y[0], b.Y[0]
	for i := 1; i < b.N(); i++ {
		minX = math.Min(minX, b.X[i])
		maxX = math.Max(maxX, b.X[i])
		minY = math.Min(minY, b.Y[i])
		maxY = math.Max(maxY, b.Y[i])
	}
	size = math.Max(maxX-minX, maxY-minY)
	if size == 0 {
		size = 1
	}
	size *= 1.0000001 // keep the max-coordinate body strictly inside
	return minX, minY, size
}

// MortonKey returns the interleaved-bits key of body i within the given
// bounds, used for the cost-zones partition: contiguous key ranges are
// spatially compact.
func (b *Bodies) MortonKey(i int, x0, y0, size float64) uint32 {
	const bits = 16
	fx := (b.X[i] - x0) / size
	fy := (b.Y[i] - y0) / size
	ix := uint32(fx * (1 << bits))
	iy := uint32(fy * (1 << bits))
	if ix >= 1<<bits {
		ix = 1<<bits - 1
	}
	if iy >= 1<<bits {
		iy = 1<<bits - 1
	}
	return interleave(ix) | interleave(iy)<<1
}

// interleave spreads the low 16 bits of v into the even bit positions.
func interleave(v uint32) uint32 {
	v &= 0xFFFF
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}
