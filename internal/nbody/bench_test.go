package nbody

import "testing"

// Host-performance microbenchmarks of the N-body substrate.

func BenchmarkTreeBuild(b *testing.B) {
	bodies := NewPlummer(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(bodies)
	}
}

func BenchmarkAccel(b *testing.B) {
	bodies := NewPlummer(4096, 1)
	t := Build(bodies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.DirectAccel(bodies, int32(i%4096), ThetaBH)
	}
}

func BenchmarkCostZones(b *testing.B) {
	bodies := NewPlummer(4096, 1)
	cost := make([]float64, 4096)
	for i := range cost {
		cost[i] = float64(i%97 + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CostZones(bodies, cost, 16)
	}
}

func BenchmarkStep(b *testing.B) {
	bodies := NewPlummer(2048, 1)
	ax := make([]float64, 2048)
	ay := make([]float64, 2048)
	inter := make([]int, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Step(bodies, Build(bodies), ThetaBH, ax, ay, inter)
	}
}
