package nbody

import (
	"fmt"

	"o2k/internal/planio"
)

// Quadtree serialization for the persistent plan cache. The tree is stored
// cell-for-cell (geometry, children, centre of mass, leaf payload), so a
// decoded tree is reflect.DeepEqual to the encoded one — including the
// leaf/internal distinction, which IsLeaf derives from Bodies being non-nil:
//
//	o2knbtree 1 <ncells> <root>
//	<X0> <Y0> <Size> <c0> <c1> <c2> <c3> <NBody> <CX> <CY> <CM> <nb> [bodies]
//
// nb is -1 for internal cells (nil Bodies); leaves write their body count
// followed by the body indices. Decoding validates child and body indices,
// so a corrupt payload decodes to an error, never a panic.

// AppendTo writes the tree.
func (t *Tree) AppendTo(pw *planio.Writer) {
	pw.Word("o2knbtree")
	pw.Int(1)
	pw.Int(len(t.Cells))
	pw.Int(int(t.Root))
	pw.End()
	for i := range t.Cells {
		c := &t.Cells[i]
		pw.Float(c.X0)
		pw.Float(c.Y0)
		pw.Float(c.Size)
		for _, ch := range c.Child {
			pw.Int(int(ch))
		}
		pw.Int(c.NBody)
		pw.Float(c.CX)
		pw.Float(c.CY)
		pw.Float(c.CM)
		if c.Bodies == nil {
			pw.Int(-1)
		} else {
			pw.Int(len(c.Bodies))
			pw.I32s(c.Bodies)
		}
		pw.End()
	}
}

// DecodeTreeFrom reads a tree written by AppendTo. maxBody bounds the valid
// body-index space (the simulation's body count).
func DecodeTreeFrom(s *planio.Scanner, maxBody int) (*Tree, error) {
	s.Expect("o2knbtree")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return nil, fmt.Errorf("nbody: unsupported tree version %d", v)
	}
	n := s.IntRange(1, 1<<28)
	root := s.IntRange(0, n-1)
	if err := s.Err(); err != nil {
		return nil, err
	}
	t := &Tree{Cells: make([]Cell, n), Root: int32(root)}
	for i := 0; i < n; i++ {
		c := &t.Cells[i]
		c.X0 = s.Float()
		c.Y0 = s.Float()
		c.Size = s.Float()
		for q := 0; q < 4; q++ {
			c.Child[q] = int32(s.IntRange(-1, n-1))
		}
		c.NBody = s.IntRange(0, maxBody)
		c.CX = s.Float()
		c.CY = s.Float()
		c.CM = s.Float()
		nb := s.IntRange(-1, maxBody)
		if nb >= 0 {
			c.Bodies = make([]int32, nb)
			s.I32s(c.Bodies, 0, maxBody-1)
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
