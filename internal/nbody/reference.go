package nbody

import "slices"

// MortonOrder returns the body indices sorted by Morton key, ties broken by
// index — the space-filling traversal CostZones splits. The comparator is a
// total order, so the permutation is unique: any sorting algorithm produces
// identical output. It depends only on positions, never on costs or the
// processor count, so callers deriving partitions for several processor
// counts over one body set compute it once and reuse it.
func MortonOrder(b *Bodies) []int32 {
	n := b.N()
	x0, y0, size := b.Bounds()
	// key<<32|index composites sort exactly as (key, index) pairs.
	comp := make([]uint64, n)
	for i := 0; i < n; i++ {
		comp[i] = uint64(b.MortonKey(i, x0, y0, size))<<32 | uint64(uint32(i))
	}
	slices.Sort(comp)
	order := make([]int32, n)
	for i, k := range comp {
		order[i] = int32(uint32(k))
	}
	return order
}

// CostZones partitions bodies into nparts spatially-compact, cost-balanced
// zones: bodies are ordered by Morton key and split at cumulative-cost
// boundaries. cost[i] is the per-body work estimate (interaction count from
// the previous step; ones for the first). Ties in keys break by body index,
// so the partition is deterministic.
func CostZones(b *Bodies, cost []float64, nparts int) []int32 {
	return CostZonesOrdered(MortonOrder(b), cost, nparts)
}

// CostZonesOrdered is CostZones over a precomputed Morton order.
func CostZonesOrdered(order []int32, cost []float64, nparts int) []int32 {
	total := 0.0
	for _, ci := range cost {
		total += ci
	}
	out := make([]int32, len(order))
	part := 0
	cum := 0.0
	for _, i := range order {
		// Advance to the next zone when this one's share is filled.
		for part < nparts-1 && cum >= total*float64(part+1)/float64(nparts) {
			part++
		}
		out[i] = int32(part)
		cum += cost[i]
	}
	return out
}

// Step advances the reference simulation by one leapfrog step with the
// given tree, writing accelerations into ax/ay and returning per-body
// interaction counts. Bodies update in index order.
func Step(b *Bodies, t *Tree, theta float64, ax, ay []float64, inter []int) {
	n := b.N()
	for i := 0; i < n; i++ {
		ax[i], ay[i], inter[i] = t.DirectAccel(b, int32(i), theta)
	}
	for i := 0; i < n; i++ {
		b.VX[i] += ax[i] * DT
		b.VY[i] += ay[i] * DT
		b.X[i] += b.VX[i] * DT
		b.Y[i] += b.VY[i] * DT
	}
}

// Energy returns the kinetic energy (a cheap sanity invariant: it should
// stay bounded over the short runs used here).
func (b *Bodies) Energy() float64 {
	e := 0.0
	for i := 0; i < b.N(); i++ {
		e += 0.5 * b.M[i] * (b.VX[i]*b.VX[i] + b.VY[i]*b.VY[i])
	}
	return e
}

// Checksum folds positions into a deterministic digest (index order).
func (b *Bodies) Checksum() float64 {
	s := 0.0
	for i := 0; i < b.N(); i++ {
		s += b.X[i] + 2*b.Y[i]
	}
	return s
}
