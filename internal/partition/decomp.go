package partition

import (
	"o2k/internal/mesh"
)

// Decomp turns a per-triangle partition of a mesh snapshot into the
// ownership relations and communication lists the three programming-model
// codes share. The decomposition discipline (identical in every model, so
// numerical results match bitwise):
//
//   - Triangles are partitioned (input).
//   - Each edge is computed by the owner of its first adjacent triangle.
//   - Each vertex is owned by the owner of the lowest-indexed triangle that
//     contains it.
//   - For every vertex a processor's edges touch but it does not own, the
//     processor sends one partial sum (contribution exchange) and needs the
//     owner's updated value back (ghost exchange). Both use the same sorted
//     border-vertex lists.
//
// All lists are sorted by (peer, vertex ID), so message contents and
// floating-point accumulation order are deterministic.
type Decomp struct {
	M *mesh.Mesh
	P int

	TriOwner  []int32 // per triangle
	EdgeOwner []int32 // per edge
	VertOwner []int32 // per global vertex ID; -1 if unused in this snapshot

	OwnedTris  [][]int32 // per proc, ascending triangle IDs
	OwnedEdges [][]int32 // per proc, ascending edge IDs
	OwnedVerts [][]int32 // per proc, ascending vertex IDs

	// Border[p][q]: vertices owned by q that p's edges touch (p != q),
	// ascending. Contributions flow p→q over these lists; updated values
	// flow q→p over the same lists.
	Border [][][]int32

	EdgeCut int // edges whose adjacent triangles have different owners
}

// NewDecomp builds the decomposition for snapshot m under the given triangle
// partition with nparts parts.
func NewDecomp(m *mesh.Mesh, triOwner []int32, nparts int) *Decomp {
	if len(triOwner) != m.NumTris() {
		panic("partition: triOwner length != triangle count")
	}
	d := &Decomp{M: m, P: nparts, TriOwner: triOwner}

	d.OwnedTris = make([][]int32, nparts)
	for t, p := range triOwner {
		d.OwnedTris[p] = append(d.OwnedTris[p], int32(t))
	}

	// Edge ownership and cut.
	ne := m.NumEdges()
	d.EdgeOwner = make([]int32, ne)
	d.OwnedEdges = make([][]int32, nparts)
	for e := 0; e < ne; e++ {
		ts := m.EdgeTris[e]
		own := triOwner[ts[0]]
		d.EdgeOwner[e] = own
		d.OwnedEdges[own] = append(d.OwnedEdges[own], int32(e))
		if ts[1] >= 0 && triOwner[ts[1]] != own {
			d.EdgeCut++
		}
	}

	// Vertex ownership: lowest-indexed containing triangle wins.
	nv := m.NumVertsTotal()
	d.VertOwner = make([]int32, nv)
	for v := range d.VertOwner {
		d.VertOwner[v] = -1
	}
	for t := 0; t < m.NumTris(); t++ {
		for _, v := range m.Tris[t] {
			if d.VertOwner[v] == -1 {
				d.VertOwner[v] = triOwner[t]
			}
		}
	}
	d.OwnedVerts = make([][]int32, nparts)
	for v := int32(0); v < int32(nv); v++ {
		if o := d.VertOwner[v]; o >= 0 {
			d.OwnedVerts[o] = append(d.OwnedVerts[o], v)
		}
	}

	// Border lists: vertices my edges touch that someone else owns.
	seen := make([][]bool, nparts) // seen[p][v] — lazily allocated bitsets
	d.Border = make([][][]int32, nparts)
	for p := 0; p < nparts; p++ {
		d.Border[p] = make([][]int32, nparts)
		seen[p] = make([]bool, nv)
	}
	for e := 0; e < ne; e++ {
		p := d.EdgeOwner[e]
		for _, v := range d.M.Edges[e] {
			q := d.VertOwner[v]
			if q != p && !seen[p][v] {
				seen[p][v] = true
				d.Border[p][q] = append(d.Border[p][q], v)
			}
		}
	}
	// Edge iteration is in ascending edge order, and Edges store (min,max)
	// pairs, but border vertices must be ascending per (p,q) list: sort.
	for p := 0; p < nparts; p++ {
		for q := 0; q < nparts; q++ {
			sortInt32s(d.Border[p][q])
		}
	}
	return d
}

func sortInt32s(s []int32) {
	// Insertion sort is fine: border lists are short; avoid sort.Slice
	// closure allocation in this hot path.
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}

// Neighbors returns, for processor p, the peers it exchanges border data
// with (in ascending order), considering both directions.
func (d *Decomp) Neighbors(p int) []int {
	var out []int
	for q := 0; q < d.P; q++ {
		if q == p {
			continue
		}
		if len(d.Border[p][q]) > 0 || len(d.Border[q][p]) > 0 {
			out = append(out, q)
		}
	}
	return out
}

// MaxBorder returns the largest single border list length (a proxy for the
// largest message in the ghost exchange).
func (d *Decomp) MaxBorder() int {
	m := 0
	for p := range d.Border {
		for q := range d.Border[p] {
			if l := len(d.Border[p][q]); l > m {
				m = l
			}
		}
	}
	return m
}

// DataMemory returns the per-model "model-visible" field memory in bytes for
// nfields vertex fields of 8 bytes each, used by the memory-footprint table:
//
//   - MP and SHMEM processes store their owned vertices plus ghost copies of
//     every border vertex (both directions), plus the send/recv buffers.
//   - CC-SAS stores each field exactly once, shared.
func (d *Decomp) DataMemory(nfields int) (mpBytes, shmBytes, sasBytes int) {
	const w = 8
	nv := 0
	for _, ov := range d.OwnedVerts {
		nv += len(ov)
	}
	ghosts := 0
	for p := range d.Border {
		for q := range d.Border[p] {
			ghosts += len(d.Border[p][q]) // p's copies of q-owned verts
			ghosts += len(d.Border[q][p]) // p's staging for inbound partials
		}
	}
	mpBytes = nfields * w * (nv + ghosts)
	// SHMEM needs the same ghost copies but stages transfers in the
	// symmetric heap without separate MPI buffers: count ghosts once.
	shmBytes = nfields * w * (nv + ghosts/2)
	sasBytes = nfields * w * nv
	return
}
