package partition

import "sort"

// The PLUM framework (Oliker & Biswas) observed that after repartitioning an
// adapted mesh, the labels of the new parts are arbitrary — so choosing which
// processor gets which new part is a degree of freedom that can drastically
// reduce data movement. Remap implements PLUM's similarity-matrix heuristic:
// build S[p][q] = weight currently on processor p that the new partition
// assigns to part q, then greedily match the largest entries.

// RemapStats quantifies the migration a remapping implies, in the metrics
// PLUM reports.
type RemapStats struct {
	TotalW   float64 // total weight that changes processors (TotalV)
	MaxOutW  float64 // largest per-processor outgoing weight (MaxV, send side)
	MaxInW   float64 // largest per-processor incoming weight (MaxV, recv side)
	Retained float64 // fraction of total weight that stays put
}

// Remap chooses the part→processor assignment that (heuristically) maximizes
// the weight that stays on its current processor. oldOwner[i] is element i's
// current processor, newPart[i] its part in the fresh partition, w[i] its
// weight (e.g. element count or compute cost). It returns assign with
// assign[q] = processor that receives part q, plus migration statistics.
func Remap(oldOwner, newPart []int32, w []float64, nparts int) ([]int32, RemapStats) {
	if len(oldOwner) != len(newPart) || len(oldOwner) != len(w) {
		panic("partition: remap input length mismatch")
	}
	// Sparse similarity matrix: an old part overlaps only a handful of new
	// parts, so the nonzero entries number O(nparts), not nparts². Greedy
	// maximum matching on the sorted entries selects exactly what repeated
	// global-max scans over the dense matrix would (ties broken by lower
	// processor, then lower part, for determinism), at O(nnz log nnz) instead
	// of O(nparts³) — the dense scan dominated whole runs at 1024 parts.
	sim := make(map[int64]float64)
	total := 0.0
	for i := range oldOwner {
		sim[int64(oldOwner[i])<<32|int64(newPart[i])] += w[i]
		total += w[i]
	}
	type entry struct {
		w    float64
		p, q int32
	}
	entries := make([]entry, 0, len(sim))
	for k, v := range sim {
		if v > 0 {
			entries = append(entries, entry{v, int32(k >> 32), int32(k & 0xffffffff)})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.w != b.w {
			return a.w > b.w
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.q < b.q
	})
	assign := make([]int32, nparts)
	procTaken := make([]bool, nparts)
	partTaken := make([]bool, nparts)
	matched := 0
	for _, e := range entries {
		if procTaken[e.p] || partTaken[e.q] {
			continue
		}
		assign[e.q] = e.p
		procTaken[e.p] = true
		partTaken[e.q] = true
		matched++
	}
	// Leftovers have zero retained weight everywhere; the dense scan pairs
	// them lowest free processor to lowest free part, in order.
	if matched < nparts {
		p := 0
		for q := 0; q < nparts; q++ {
			if partTaken[q] {
				continue
			}
			for procTaken[p] {
				p++
			}
			assign[q] = int32(p)
			p++
		}
	}
	return assign, migrationStats(oldOwner, newPart, w, assign, nparts, total)
}

// IdentityAssign is the no-remap baseline: part q goes to processor q.
func IdentityAssign(nparts int) []int32 {
	a := make([]int32, nparts)
	for i := range a {
		a[i] = int32(i)
	}
	return a
}

// MigrationStats computes the movement statistics of an arbitrary
// assignment, for comparing Remap against the identity baseline.
func MigrationStats(oldOwner, newPart []int32, w []float64, assign []int32, nparts int) RemapStats {
	total := 0.0
	for _, wi := range w {
		total += wi
	}
	return migrationStats(oldOwner, newPart, w, assign, nparts, total)
}

func migrationStats(oldOwner, newPart []int32, w []float64, assign []int32, nparts int, total float64) RemapStats {
	var st RemapStats
	out := make([]float64, nparts)
	in := make([]float64, nparts)
	for i := range oldOwner {
		dst := assign[newPart[i]]
		if dst != oldOwner[i] {
			st.TotalW += w[i]
			out[oldOwner[i]] += w[i]
			in[dst] += w[i]
		}
	}
	for p := 0; p < nparts; p++ {
		if out[p] > st.MaxOutW {
			st.MaxOutW = out[p]
		}
		if in[p] > st.MaxInW {
			st.MaxInW = in[p]
		}
	}
	if total > 0 {
		st.Retained = 1 - st.TotalW/total
	} else {
		st.Retained = 1
	}
	return st
}
