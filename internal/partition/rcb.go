// Package partition provides the domain-decomposition machinery the
// adaptive applications share: a weighted recursive-coordinate-bisection
// (RCB) partitioner, a PLUM-style remapper that keeps repartitioned data
// close to where it already lives, and the Decomp structure that turns a
// triangle partition into the ownership and communication lists the three
// programming-model implementations consume.
package partition

import (
	"sort"
)

// RCB partitions n weighted points (xs[i], ys[i], w[i]) into nparts parts by
// recursive coordinate bisection: split the longer bounding-box axis at the
// weighted median, recursing with proportional part counts (so nparts need
// not be a power of two). It returns the part index per point.
//
// The computation is deterministic: ties in coordinates are broken by point
// index.
func RCB(xs, ys, w []float64, nparts int) []int32 {
	if nparts < 1 {
		panic("partition: nparts must be >= 1")
	}
	if len(xs) != len(ys) || len(xs) != len(w) {
		panic("partition: coordinate/weight length mismatch")
	}
	out := make([]int32, len(xs))
	idx := make([]int32, len(xs))
	for i := range idx {
		idx[i] = int32(i)
	}
	rcbRec(xs, ys, w, idx, 0, nparts, out)
	return out
}

func rcbRec(xs, ys, w []float64, idx []int32, base, nparts int, out []int32) {
	if nparts == 1 {
		for _, i := range idx {
			out[i] = int32(base)
		}
		return
	}
	if len(idx) == 0 {
		return
	}
	// Pick the split dimension by bounding-box extent.
	minX, maxX := xs[idx[0]], xs[idx[0]]
	minY, maxY := ys[idx[0]], ys[idx[0]]
	for _, i := range idx {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	coord := xs
	if maxY-minY > maxX-minX {
		coord = ys
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if coord[ia] != coord[ib] {
			return coord[ia] < coord[ib]
		}
		return ia < ib
	})
	left := nparts / 2
	right := nparts - left
	var total float64
	for _, i := range idx {
		total += w[i]
	}
	target := total * float64(left) / float64(nparts)
	cum := 0.0
	cut := 0
	for cut < len(idx)-1 {
		cum += w[idx[cut]]
		cut++
		if cum >= target {
			break
		}
	}
	if cut == 0 {
		cut = 1
	}
	if left > 0 && cut > len(idx)-(right) && len(idx) >= nparts {
		cut = len(idx) - right
	}
	rcbRec(xs, ys, w, idx[:cut], base, left, out)
	rcbRec(xs, ys, w, idx[cut:], base+left, right, out)
}

// Imbalance returns max part weight divided by average part weight (1.0 is
// perfect) for the given assignment.
func Imbalance(part []int32, w []float64, nparts int) float64 {
	if len(part) == 0 {
		return 1
	}
	sums := make([]float64, nparts)
	total := 0.0
	for i, p := range part {
		sums[p] += w[i]
		total += w[i]
	}
	maxW := 0.0
	for _, s := range sums {
		if s > maxW {
			maxW = s
		}
	}
	if total == 0 {
		return 1
	}
	return maxW * float64(nparts) / total
}
