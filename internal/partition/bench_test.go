package partition

import (
	"testing"

	"o2k/internal/mesh"
)

// Host-performance microbenchmarks of the partitioning machinery.

func benchMesh(b *testing.B) *mesh.Mesh {
	b.Helper()
	f := mesh.NewUnitSquare(12, 3)
	f.Adapt(mesh.DefaultFront(3).At(0))
	return f.Snapshot()
}

func BenchmarkRCB(b *testing.B) {
	xs, ys, w := uniformPoints(20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RCB(xs, ys, w, 64)
	}
}

func BenchmarkNewDecomp(b *testing.B) {
	m := benchMesh(b)
	xs := make([]float64, m.NumTris())
	ys := make([]float64, m.NumTris())
	wt := make([]float64, m.NumTris())
	for t := 0; t < m.NumTris(); t++ {
		xs[t], ys[t] = m.Centroid(t)
		wt[t] = 1
	}
	part := RCB(xs, ys, wt, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDecomp(m, part, 16)
	}
}

func BenchmarkRemap(b *testing.B) {
	n, p := 20000, 64
	old := make([]int32, n)
	newPart := make([]int32, n)
	w := make([]float64, n)
	for i := range old {
		old[i] = int32(i * p / n)
		newPart[i] = int32(((i + n/p) % n) * p / n)
		w[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Remap(old, newPart, w, p)
	}
}
