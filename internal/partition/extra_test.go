package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"o2k/internal/mesh"
)

// Property: for any random triangle partition of a valid snapshot, the
// decomposition invariants hold — complete disjoint ownership and border
// lists pointing at real owners.
func TestDecompPropertyRandomPartitions(t *testing.T) {
	f := mesh.NewUnitSquare(5, 2)
	f.Adapt(mesh.DefaultFront(2).At(1))
	m := f.Snapshot()
	prop := func(seed int64, p8 uint8) bool {
		nparts := int(p8)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		owner := make([]int32, m.NumTris())
		for i := range owner {
			owner[i] = int32(rng.Intn(nparts))
		}
		d := NewDecomp(m, owner, nparts)
		// Edges owned exactly once, by the first adjacent tri's owner.
		for e := 0; e < m.NumEdges(); e++ {
			if d.EdgeOwner[e] != owner[m.EdgeTris[e][0]] {
				return false
			}
		}
		// Borders: owner correct, touch relation plausible.
		for p := 0; p < nparts; p++ {
			for q := 0; q < nparts; q++ {
				for _, v := range d.Border[p][q] {
					if d.VertOwner[v] != int32(q) || p == q {
						return false
					}
				}
			}
		}
		// Owned vertex lists partition the used vertices.
		count := 0
		for p := 0; p < nparts; p++ {
			count += len(d.OwnedVerts[p])
		}
		return count == m.NumVertsUsed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRemapSinglePart(t *testing.T) {
	old := []int32{0, 0, 0}
	newPart := []int32{0, 0, 0}
	w := []float64{1, 2, 3}
	assign, st := Remap(old, newPart, w, 1)
	if assign[0] != 0 || st.TotalW != 0 || st.Retained != 1 {
		t.Fatalf("degenerate remap wrong: %v %+v", assign, st)
	}
}

func TestRemapAllWeightZero(t *testing.T) {
	old := []int32{0, 1}
	newPart := []int32{1, 0}
	w := []float64{0, 0}
	_, st := Remap(old, newPart, w, 2)
	if st.Retained != 1 {
		t.Fatalf("zero-weight retained = %v", st.Retained)
	}
}

func TestRCBSinglePoint(t *testing.T) {
	part := RCB([]float64{0.5}, []float64{0.5}, []float64{1}, 4)
	if part[0] < 0 || part[0] >= 4 {
		t.Fatalf("single point part %d", part[0])
	}
}

func TestRCBDegenerateCoordinates(t *testing.T) {
	// All points identical: must still terminate and assign valid parts.
	n := 64
	xs := make([]float64, n)
	ys := make([]float64, n)
	w := make([]float64, n)
	for i := range xs {
		xs[i], ys[i], w[i] = 0.5, 0.5, 1
	}
	part := RCB(xs, ys, w, 8)
	counts := make([]int, 8)
	for _, p := range part {
		counts[p]++
	}
	for q, c := range counts {
		if c != 8 {
			t.Fatalf("degenerate RCB zone %d has %d points", q, c)
		}
	}
}
