package partition

import (
	"fmt"

	"o2k/internal/mesh"
	"o2k/internal/planio"
)

// Decomp serialization. Every field of a Decomp is deterministically derived
// by NewDecomp from (mesh, TriOwner, P) — see the ownership discipline in
// decomp.go — so the codec stores only the triangle-owner vector and rebuilds
// the rest on decode. That keeps plan-cache entries small and means a decoded
// decomposition is reflect.DeepEqual to the encoded one by construction.
//
//	o2kdecomp 1 <P> <nt>
//	<owner> ...            (nt tokens)

// AppendTo writes the decomposition's compact form.
func (d *Decomp) AppendTo(pw *planio.Writer) {
	pw.Word("o2kdecomp")
	pw.Int(1)
	pw.Int(d.P)
	pw.Int(len(d.TriOwner))
	pw.End()
	pw.I32s(d.TriOwner)
	pw.End()
}

// DecodeDecompFrom reads a decomposition written by AppendTo and rebuilds it
// over snapshot m. The owner vector is validated (length matches the mesh,
// owners in [0, P)) before NewDecomp runs, so corrupt payloads decode to an
// error instead of panicking.
func DecodeDecompFrom(s *planio.Scanner, m *mesh.Mesh) (*Decomp, error) {
	s.Expect("o2kdecomp")
	if v := s.Int(); s.Err() == nil && v != 1 {
		return nil, fmt.Errorf("partition: unsupported decomp version %d", v)
	}
	p := s.IntRange(1, 1<<20)
	nt := s.Int()
	if err := s.Err(); err != nil {
		return nil, err
	}
	if nt != m.NumTris() {
		return nil, fmt.Errorf("partition: decomp has %d owners for a %d-triangle mesh", nt, m.NumTris())
	}
	owner := make([]int32, nt)
	s.I32s(owner, 0, p-1)
	if err := s.Err(); err != nil {
		return nil, err
	}
	return NewDecomp(m, owner, p), nil
}
