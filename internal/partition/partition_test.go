package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"o2k/internal/mesh"
)

func uniformPoints(n int, seed int64) (xs, ys, w []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	w = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
		w[i] = 1
	}
	return
}

func TestRCBCoversAllParts(t *testing.T) {
	xs, ys, w := uniformPoints(1000, 1)
	for _, p := range []int{1, 2, 3, 7, 16, 64} {
		part := RCB(xs, ys, w, p)
		count := make([]int, p)
		for _, q := range part {
			if q < 0 || int(q) >= p {
				t.Fatalf("part %d out of range", q)
			}
			count[q]++
		}
		for q, c := range count {
			if c == 0 {
				t.Errorf("nparts=%d: part %d empty", p, q)
			}
		}
	}
}

func TestRCBBalance(t *testing.T) {
	xs, ys, w := uniformPoints(4096, 2)
	part := RCB(xs, ys, w, 16)
	if imb := Imbalance(part, w, 16); imb > 1.05 {
		t.Fatalf("imbalance %v too high for uniform points", imb)
	}
}

func TestRCBWeighted(t *testing.T) {
	// Heavy points on the left half: the left parts must hold fewer points.
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	w := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n)
		ys[i] = 0.5
		if xs[i] < 0.5 {
			w[i] = 10
		} else {
			w[i] = 1
		}
	}
	part := RCB(xs, ys, w, 2)
	if imb := Imbalance(part, w, 2); imb > 1.1 {
		t.Fatalf("weighted imbalance %v", imb)
	}
}

func TestRCBDeterministic(t *testing.T) {
	xs, ys, w := uniformPoints(500, 3)
	a := RCB(xs, ys, w, 8)
	b := RCB(xs, ys, w, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RCB nondeterministic")
		}
	}
}

func TestRCBSpatialLocality(t *testing.T) {
	// Points in the same tight cluster should land in the same part.
	xs := []float64{0.1, 0.1001, 0.9, 0.9001}
	ys := []float64{0.1, 0.1001, 0.9, 0.9001}
	w := []float64{1, 1, 1, 1}
	part := RCB(xs, ys, w, 2)
	if part[0] != part[1] || part[2] != part[3] || part[0] == part[2] {
		t.Fatalf("clusters split: %v", part)
	}
}

func TestRCBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nparts=0")
		}
	}()
	RCB([]float64{1}, []float64{1}, []float64{1}, 0)
}

func TestImbalanceEdgeCases(t *testing.T) {
	if Imbalance(nil, nil, 4) != 1 {
		t.Error("empty imbalance should be 1")
	}
	part := []int32{0, 1}
	w := []float64{0, 0}
	if Imbalance(part, w, 2) != 1 {
		t.Error("zero-weight imbalance should be 1")
	}
}

func TestRemapIdentityWhenUnchanged(t *testing.T) {
	// New partition identical to old ownership: remap must retain 100%.
	old := []int32{0, 0, 1, 1, 2, 2, 3, 3}
	newPart := []int32{3, 3, 2, 2, 1, 1, 0, 0} // same groups, permuted labels
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	assign, st := Remap(old, newPart, w, 4)
	if st.TotalW != 0 || st.Retained != 1 {
		t.Fatalf("remap failed to recognize permutation: %+v", st)
	}
	if assign[3] != 0 || assign[0] != 3 {
		t.Fatalf("assignment wrong: %v", assign)
	}
}

func TestRemapBeatsIdentity(t *testing.T) {
	// Random-ish relabeling: PLUM remap must move no more than identity.
	rng := rand.New(rand.NewSource(7))
	n, p := 1000, 8
	old := make([]int32, n)
	newPart := make([]int32, n)
	w := make([]float64, n)
	for i := range old {
		old[i] = int32(rng.Intn(p))
		// New partition correlates with old but relabeled by +3 mod p.
		if rng.Float64() < 0.8 {
			newPart[i] = (old[i] + 3) % int32(p)
		} else {
			newPart[i] = int32(rng.Intn(p))
		}
		w[i] = 1
	}
	_, remapSt := Remap(old, newPart, w, p)
	identSt := MigrationStats(old, newPart, w, IdentityAssign(p), p)
	if remapSt.TotalW > identSt.TotalW {
		t.Fatalf("remap moved %v > identity %v", remapSt.TotalW, identSt.TotalW)
	}
	if remapSt.Retained < 0.7 {
		t.Fatalf("remap retained only %v", remapSt.Retained)
	}
}

func TestRemapAssignIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 200, 6
		old := make([]int32, n)
		newPart := make([]int32, n)
		w := make([]float64, n)
		for i := range old {
			old[i] = int32(rng.Intn(p))
			newPart[i] = int32(rng.Intn(p))
			w[i] = rng.Float64()
		}
		assign, _ := Remap(old, newPart, w, p)
		seen := make([]bool, p)
		for _, a := range assign {
			if a < 0 || int(a) >= p || seen[a] {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func buildDecomp(t *testing.T, gridN, levels, nparts int) *Decomp {
	t.Helper()
	f := mesh.NewUnitSquare(gridN, levels)
	f.Adapt(mesh.DefaultFront(levels).At(0))
	m := f.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, m.NumTris())
	ys := make([]float64, m.NumTris())
	w := make([]float64, m.NumTris())
	for i := range xs {
		xs[i], ys[i] = m.Centroid(i)
		w[i] = 1
	}
	return NewDecomp(m, RCB(xs, ys, w, nparts), nparts)
}

func TestDecompOwnershipComplete(t *testing.T) {
	d := buildDecomp(t, 6, 2, 8)
	m := d.M
	// Every edge owned exactly once.
	seenE := make([]bool, m.NumEdges())
	for p := 0; p < d.P; p++ {
		for _, e := range d.OwnedEdges[p] {
			if seenE[e] {
				t.Fatalf("edge %d owned twice", e)
			}
			seenE[e] = true
		}
	}
	for e, s := range seenE {
		if !s {
			t.Fatalf("edge %d unowned", e)
		}
	}
	// Every used vertex owned exactly once.
	seenV := make(map[int32]bool)
	for p := 0; p < d.P; p++ {
		for _, v := range d.OwnedVerts[p] {
			if seenV[v] {
				t.Fatalf("vertex %d owned twice", v)
			}
			seenV[v] = true
		}
	}
	for v := int32(0); v < int32(m.NumVertsTotal()); v++ {
		if m.VertUsed(v) != seenV[v] {
			t.Fatalf("vertex %d: used=%v owned=%v", v, m.VertUsed(v), seenV[v])
		}
	}
}

func TestDecompBorderConsistency(t *testing.T) {
	d := buildDecomp(t, 6, 2, 8)
	for p := 0; p < d.P; p++ {
		if len(d.Border[p][p]) != 0 {
			t.Fatalf("proc %d has self border", p)
		}
		for q := 0; q < d.P; q++ {
			last := int32(-1)
			for _, v := range d.Border[p][q] {
				if d.VertOwner[v] != int32(q) {
					t.Fatalf("border[%d][%d] vertex %d owned by %d", p, q, v, d.VertOwner[v])
				}
				if v <= last {
					t.Fatalf("border[%d][%d] not ascending", p, q)
				}
				last = v
				// p must actually touch v through one of its edges.
				touched := false
				for _, e := range d.OwnedEdges[p] {
					if d.M.Edges[e][0] == v || d.M.Edges[e][1] == v {
						touched = true
						break
					}
				}
				if !touched {
					t.Fatalf("border[%d][%d] vertex %d not touched by %d", p, q, v, p)
				}
			}
		}
	}
}

func TestDecompEdgeCutPositive(t *testing.T) {
	d := buildDecomp(t, 6, 2, 8)
	if d.EdgeCut == 0 {
		t.Fatal("8-way partition should cut edges")
	}
	// Single part: no cut, no borders.
	d1 := buildDecomp(t, 6, 2, 1)
	if d1.EdgeCut != 0 {
		t.Fatal("1-way partition has cut edges")
	}
	if len(d1.Neighbors(0)) != 0 {
		t.Fatal("1-way partition has neighbors")
	}
}

func TestDecompNeighborsSymmetric(t *testing.T) {
	d := buildDecomp(t, 6, 2, 8)
	for p := 0; p < d.P; p++ {
		for _, q := range d.Neighbors(p) {
			found := false
			for _, r := range d.Neighbors(q) {
				if r == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation asymmetric: %d->%d", p, q)
			}
		}
	}
}

func TestDecompDataMemoryOrdering(t *testing.T) {
	d := buildDecomp(t, 8, 2, 16)
	mpB, shmB, sasB := d.DataMemory(3)
	if !(sasB < shmB && shmB < mpB) {
		t.Fatalf("memory ordering violated: mp=%d shm=%d sas=%d", mpB, shmB, sasB)
	}
	if d.MaxBorder() == 0 {
		t.Fatal("expected nonzero border")
	}
}

func TestSortInt32s(t *testing.T) {
	f := func(vals []int32) bool {
		cp := append([]int32(nil), vals...)
		sortInt32s(cp)
		for i := 1; i < len(cp); i++ {
			if cp[i-1] > cp[i] {
				return false
			}
		}
		return len(cp) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
