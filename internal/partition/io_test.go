package partition

// Round-trip and corruption properties of the decomposition codec.

import (
	"reflect"
	"testing"

	"o2k/internal/mesh"
	"o2k/internal/planio"
)

func testDecomp(t *testing.T) (*mesh.Mesh, *Decomp) {
	t.Helper()
	f := mesh.NewUnitSquare(6, 2)
	f.Adapt(mesh.DefaultFront(2).At(0))
	m := f.Snapshot()
	nt := m.NumTris()
	xs := make([]float64, nt)
	ys := make([]float64, nt)
	wt := make([]float64, nt)
	for i := 0; i < nt; i++ {
		xs[i], ys[i] = m.Centroid(i)
		wt[i] = 1
	}
	owner := RCB(xs, ys, wt, 4)
	return m, NewDecomp(m, owner, 4)
}

func TestDecompRoundTripDeepEqual(t *testing.T) {
	m, d := testDecomp(t)
	var pw planio.Writer
	d.AppendTo(&pw)
	s := planio.NewScanner(pw.Bytes())
	d2, err := DecodeDecompFrom(s, m)
	if err != nil {
		t.Fatal(err)
	}
	s.Done()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatal("decomp round trip is not DeepEqual")
	}
}

// Any single bit flip must decode to an error or a value — never a panic.
func TestDecompDecodeBitFlipsNeverPanic(t *testing.T) {
	m, d := testDecomp(t)
	var pw planio.Writer
	d.AppendTo(&pw)
	data := pw.Bytes()
	step := len(data)/200 + 1
	for pos := 0; pos < len(data); pos += step {
		c := append([]byte(nil), data...)
		c[pos] ^= 1 << (pos % 8)
		DecodeDecompFrom(planio.NewScanner(c), m) // must not panic
	}
}
