#!/usr/bin/env bash
set -euo pipefail

# bench.sh — measure the full-scale experiment suite and write BENCH_<pr>.json.
#
# Usage: scripts/bench.sh <pr> [baseline-rev] [runs]
#
# Builds o2kbench from the working tree and times `o2kbench -exp all -jobs 1`
# <runs> times (default 3). When a baseline revision is given, the same
# command is also timed on a clean checkout of that revision (via a temporary
# git worktree) with the runs interleaved current/baseline, so load spikes hit
# both sides evenly. The recorded statistic is the minimum, which is the
# stable estimator of true cost on a machine with background noise.
#
# A second measurement — the mesh scaling sweep at the scale1024 preset —
# rides along under the same protocol and lands in the JSON as the optional
# "scale" block: the full suite never leaves P=64, so this is the only
# timed guard on the >64-proc cold paths (merge filters, sparse remap).
#
# The output schema (o2k-bench/v1) is documented in README.md.

pr=${1:?usage: scripts/bench.sh <pr> [baseline-rev] [runs]}
baseline=${2:-}
runs=${3:-3}
bench_args=(-exp all -jobs 1)

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

tmp=$(mktemp -d)
cleaned=0
cleanup() {
    [[ $cleaned -eq 1 ]] && return
    cleaned=1
    if [[ -n "$baseline" ]]; then
        git worktree remove --force "$tmp/baseline" 2>/dev/null || true
        git worktree prune 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
# EXIT alone is not enough: bash does not run the EXIT trap when killed by
# an unhandled SIGINT/SIGTERM, which used to leave the temp dir and a stale
# `git worktree` registration behind on Ctrl-C.
trap cleanup EXIT
trap 'cleanup; trap - INT; kill -INT $$' INT
trap 'cleanup; exit 143' TERM

echo "building current o2kbench..." >&2
if ! go build -o "$tmp/o2kbench" ./cmd/o2kbench; then
    echo "bench.sh: build of current tree failed" >&2
    exit 1
fi
if [[ -n "$baseline" ]]; then
    echo "building baseline o2kbench at $baseline..." >&2
    git worktree add --detach --quiet "$tmp/baseline" "$baseline"
    if ! (cd "$tmp/baseline" && go build -o "$tmp/o2kbench-baseline" ./cmd/o2kbench); then
        echo "bench.sh: build of baseline $baseline failed" >&2
        exit 1
    fi
fi

scale_args=(-exp mesh-speedup -procs scale1024 -jobs 1)

time_once() { # binary arg... -> seconds on stdout
    local s e bin=$1
    shift
    s=$(date +%s.%N)
    "$bin" "$@" > /dev/null
    e=$(date +%s.%N)
    awk -v a="$s" -v b="$e" 'BEGIN{printf "%.2f", b-a}'
}

cur_runs=() base_runs=() scur_runs=() sbase_runs=()
for i in $(seq "$runs"); do
    echo "run $i/$runs (current)..." >&2
    cur_runs+=("$(time_once "$tmp/o2kbench" "${bench_args[@]}")")
    scur_runs+=("$(time_once "$tmp/o2kbench" "${scale_args[@]}")")
    if [[ -n "$baseline" ]]; then
        echo "run $i/$runs (baseline)..." >&2
        base_runs+=("$(time_once "$tmp/o2kbench-baseline" "${bench_args[@]}")")
        sbase_runs+=("$(time_once "$tmp/o2kbench-baseline" "${scale_args[@]}")")
    fi
done

min_of() { printf '%s\n' "$@" | sort -g | head -1; }
join_csv() { local IFS=,; echo "$*"; }

cur_min=$(min_of "${cur_runs[@]}")
out="BENCH_${pr}.json"
{
    echo "{"
    echo "  \"schema\": \"o2k-bench/v1\","
    echo "  \"pr\": ${pr},"
    echo "  \"date\": \"$(date -u +%Y-%m-%d)\","
    echo "  \"command\": \"o2kbench ${bench_args[*]}\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"host_cpus\": $(nproc),"
    echo "  \"runs_s\": [$(join_csv "${cur_runs[@]}")],"
    echo "  \"min_s\": ${cur_min},"
    if [[ -n "$baseline" ]]; then
        base_min=$(min_of "${base_runs[@]}")
        speedup=$(awk -v b="$base_min" -v c="$cur_min" 'BEGIN{printf "%.2f", b/c}')
        echo "  \"baseline\": {"
        echo "    \"rev\": \"$(git rev-parse --short "$baseline")\","
        echo "    \"runs_s\": [$(join_csv "${base_runs[@]}")],"
        echo "    \"min_s\": ${base_min},"
        echo "    \"speedup\": ${speedup}"
        echo "  },"
    fi
    scur_min=$(min_of "${scur_runs[@]}")
    echo "  \"scale\": {"
    echo "    \"command\": \"o2kbench ${scale_args[*]}\","
    echo "    \"runs_s\": [$(join_csv "${scur_runs[@]}")],"
    if [[ -n "$baseline" ]]; then
        sbase_min=$(min_of "${sbase_runs[@]}")
        sspeedup=$(awk -v b="$sbase_min" -v c="$scur_min" 'BEGIN{printf "%.2f", b/c}')
        echo "    \"min_s\": ${scur_min},"
        echo "    \"baseline\": {"
        echo "      \"runs_s\": [$(join_csv "${sbase_runs[@]}")],"
        echo "      \"min_s\": ${sbase_min},"
        echo "      \"speedup\": ${sspeedup}"
        echo "    }"
    else
        echo "    \"min_s\": ${scur_min}"
    fi
    echo "  }"
    echo "}"
} > "$out"
echo "wrote $out" >&2
cat "$out"
