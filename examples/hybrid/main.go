// Hybrid: the extension model beyond the paper's three — message passing
// between node boards, shared memory within — compared against pure MP and
// pure CC-SAS on two machine classes. The takeaway mirrors the authors'
// follow-up study: on tightly coupled ccNUMA the hybrid buys little over
// pure MP, but on a cluster of SMPs (slow network, fast nodes) it wins.
package main

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/core"
	"o2k/internal/machine"
)

func main() {
	const procs = 32
	w := adaptmesh.Default()

	for _, mc := range []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000 (2 procs/node)", machine.Default(procs)},
		{"cluster of 4-way SMPs", machine.ClusterOfSMPs(procs)},
	} {
		m := machine.MustNew(mc.cfg)
		pure := adaptmesh.RunWithPlans(core.MP, m, w, adaptmesh.BuildPlans(w, procs))
		sas := adaptmesh.RunWithPlans(core.SAS, m, w, adaptmesh.BuildPlans(w, procs))
		hyb := adaptmesh.RunHybrid(m, w)

		t := &core.Table{
			Title:  fmt.Sprintf("%s, P=%d (%d nodes)", mc.name, procs, m.Nodes()),
			Header: []string{"model", "time", "vs pure MP"},
		}
		for _, met := range []core.Metrics{pure, hyb, sas} {
			t.AddRow(met.Model.String(), core.FT(met.Total),
				core.F(float64(met.Total)/float64(pure.Total)))
		}
		fmt.Print(t.String())
		fmt.Println()
	}
	fmt.Println("hybrid = MP between nodes + shared memory within each node;")
	fmt.Println("it halves (or quarters) the message endpoints at the price of")
	fmt.Println("node-level serialization during communication phases.")
}
