// Timeline: render the virtual-time Gantt chart of one adaptive-mesh cycle
// under each programming model — the visual form of the phase-breakdown
// table. Columns are virtual time; each row is a processor; letters are
// phases (C compute, m comm, . sync/waiting, K mark, R refine, P partition,
// M remap).
package main

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func main() {
	const procs = 8
	w := adaptmesh.Small()
	mach := machine.MustNew(machine.Default(procs))
	plans := adaptmesh.BuildPlans(w, procs)

	for _, model := range core.AllModels() {
		fmt.Printf("=== %v ===\n", model)
		g := adaptmesh.TraceRun(model, mach, w, plans)
		fmt.Print(sim.RenderTimeline(g, 100))
		fmt.Println()
	}
	fmt.Println("reading the chart: MP rows alternate compute (C) and message")
	fmt.Println("overhead (m); CC-SAS rows are mostly C with thin sync (.) bands —")
	fmt.Println("its communication is invisible, folded into memory-system stalls.")
}
