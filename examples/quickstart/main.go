// Quickstart: run the adaptive-mesh application under all three programming
// models on a simulated 16-processor Origin2000 and print the comparison —
// the whole public API in thirty lines.
package main

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/core"
	"o2k/internal/machine"
)

func main() {
	const procs = 16
	mach := machine.MustNew(machine.Default(procs))
	w := adaptmesh.Default()
	plans := adaptmesh.BuildPlans(w, procs) // structural side, shared by all models

	fmt.Printf("adaptive mesh on a simulated %d-processor Origin2000\n", procs)
	fmt.Printf("final mesh: %d triangles, %d edges\n\n",
		plans[len(plans)-1].M.NumTris(), plans[len(plans)-1].M.NumEdges())

	t := &core.Table{Header: []string{"model", "time", "checksum", "messages", "remote misses"}}
	for _, model := range core.AllModels() {
		met := adaptmesh.RunWithPlans(model, mach, w, plans)
		t.AddRow(model.String(), core.FT(met.Total),
			fmt.Sprintf("%.12g", met.Checksum),
			fmt.Sprintf("%d", met.Counters.MsgsSent),
			fmt.Sprintf("%d", met.Counters.RemoteMisses))
	}
	fmt.Print(t.String())
	fmt.Println("\nnote: the checksums are bit-identical — the three codes compute the same answer.")
}
