// Cg: the conjugate-gradient comparison — the latency-bound member of the
// application mix. Watch the "sync" share of MP's time grow with P until
// the two allreduces per iteration dominate and scaling stops, while the
// CC-SAS reduction tree keeps it going.
package main

import (
	"fmt"

	"o2k/internal/apps/cg"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func main() {
	w := cg.Default()
	fmt.Printf("CG on the refined mesh: %d iterations, 2 global reductions each\n\n", w.Iters)
	t := &core.Table{Header: []string{"P", "model", "total", "sync share", "residual"}}
	for _, procs := range []int{1, 16, 64} {
		pl := cg.BuildPlan(w, procs)
		m := machine.MustNew(machine.Default(procs))
		for _, model := range core.AllModels() {
			met := cg.RunWithPlan(model, m, w, pl)
			t.AddRow(fmt.Sprintf("%d", procs), model.String(), core.FT(met.Total),
				fmt.Sprintf("%.0f%%", 100*met.PhaseFraction(sim.PhaseSync)),
				fmt.Sprintf("%.3e", met.Extra["residual"]))
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nresiduals are identical across models: same arithmetic, bit for bit.")
}
