// Meshphases: the paper-style deep dive on the adaptive-mesh application —
// scaling curves for each model and the phase-by-phase breakdown that
// explains them (where MP loses time to remapping and message overhead, and
// where CC-SAS pays coherence misses instead).
package main

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func main() {
	w := adaptmesh.Default()

	fmt.Println("== scaling (self-relative speedup) ==")
	tbl := &core.Table{Header: []string{"P", "MP", "SHMEM", "CC-SAS"}}
	var base [3]core.Metrics
	procsList := []int{1, 4, 16, 64}
	results := map[int][3]core.Metrics{}
	for i, procs := range procsList {
		mach := machine.MustNew(machine.Default(procs))
		plans := adaptmesh.BuildPlans(w, procs)
		var row [3]core.Metrics
		for j, model := range core.AllModels() {
			row[j] = adaptmesh.RunWithPlans(model, mach, w, plans)
		}
		results[procs] = row
		if i == 0 {
			base = row
		}
		tbl.AddRow(fmt.Sprintf("%d", procs),
			core.F(row[0].Speedup(base[0])),
			core.F(row[1].Speedup(base[1])),
			core.F(row[2].Speedup(base[2])))
	}
	fmt.Print(tbl.String())

	fmt.Println("\n== phase breakdown at P=64 (critical path) ==")
	m := results[64]
	bt := &core.Table{Header: []string{"phase", "MP", "SHMEM", "CC-SAS"}}
	for ph := sim.Phase(0); ph < sim.NumPhases; ph++ {
		if m[0].PhaseMax[ph]+m[1].PhaseMax[ph]+m[2].PhaseMax[ph] == 0 {
			continue
		}
		bt.AddRow(ph.String(), core.FT(m[0].PhaseMax[ph]), core.FT(m[1].PhaseMax[ph]), core.FT(m[2].PhaseMax[ph]))
	}
	bt.AddRow("TOTAL", core.FT(m[0].Total), core.FT(m[1].Total), core.FT(m[2].Total))
	fmt.Print(bt.String())

	fmt.Println("\n== what to look for ==")
	fmt.Println(" * remap: CC-SAS migrates nothing; MP pays point-to-point value migration.")
	fmt.Println(" * comm:  SHMEM's one-sided puts undercut MP's send/recv software overhead.")
	fmt.Println(" * compute: CC-SAS pays remote/coherence misses inside the solve loop instead.")
}
