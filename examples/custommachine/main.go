// Custommachine: the machine model is fully parameterized — this example
// dials the knobs to two hypothetical machines and shows how the model
// ranking responds, the kind of what-if the simulator exists for:
//
//   - "fast-messages": message software overhead cut 10x (a Cray T3E-like
//     profile) — MP closes most of its gap;
//   - "flat-memory":   no NUMA penalty at all (an ideal SMP) — CC-SAS's
//     coherence costs nearly vanish.
package main

import (
	"fmt"

	"o2k/internal/apps/adaptmesh"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func main() {
	const procs = 32
	w := adaptmesh.Default()
	plans := adaptmesh.BuildPlans(w, procs)

	configs := []struct {
		name string
		cfg  machine.Config
	}{
		{"origin2000 (baseline)", machine.Default(procs)},
		{"fast-messages", func() machine.Config {
			c := machine.Default(procs)
			c.MPSendOvNS /= 10
			c.MPRecvOvNS /= 10
			c.MPBarrierHop /= 10
			return c
		}()},
		{"flat-memory", func() machine.Config {
			c := machine.Default(procs)
			c.RemoteMissNS = c.LocalMissNS
			c.RemoteHopNS = 0
			c.CohInvalPerLine = 0
			return c
		}()},
	}

	for _, mc := range configs {
		mach := machine.MustNew(mc.cfg)
		t := &core.Table{Title: mc.name, Header: []string{"model", "time", "vs CC-SAS"}}
		var times [3]float64
		for i, model := range core.AllModels() {
			met := adaptmesh.RunWithPlans(model, mach, w, plans)
			times[i] = float64(met.Total)
		}
		for i, model := range core.AllModels() {
			t.AddRow(model.String(), core.FT(sim.Time(times[i])), core.F(times[i]/times[2]))
		}
		fmt.Print(t.String())
		fmt.Println()
	}
}
