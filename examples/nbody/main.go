// Nbody: the Barnes-Hut comparison — a different adaptivity signature from
// the mesh code (work-per-body shifts between processors; all-to-all
// visibility of positions each step) and a different winner profile.
package main

import (
	"fmt"

	"o2k/internal/apps/barnes"
	"o2k/internal/core"
	"o2k/internal/machine"
	"o2k/internal/sim"
)

func main() {
	w := barnes.Default()
	fmt.Printf("barnes-hut: %d bodies, %d steps, theta=%.2f\n\n", w.N, w.Steps, w.Theta)

	for _, procs := range []int{1, 16, 64} {
		mach := machine.MustNew(machine.Default(procs))
		plans := barnes.BuildPlans(w, procs)
		t := &core.Table{
			Title:  fmt.Sprintf("P=%d", procs),
			Header: []string{"model", "total", "tree", "force", "exchange", "checksum"},
		}
		for _, model := range core.AllModels() {
			met := barnes.RunWithPlans(model, mach, w, plans)
			t.AddRow(model.String(), core.FT(met.Total),
				core.FT(met.PhaseMax[sim.PhaseTree]),
				core.FT(met.PhaseMax[sim.PhaseCompute]),
				core.FT(met.PhaseMax[sim.PhaseComm]),
				fmt.Sprintf("%.10g", met.Checksum))
		}
		fmt.Print(t.String())
		fmt.Println()
	}
	fmt.Println("reference checksum:", barnes.ReferenceChecksum(w))
	fmt.Println("(replicated tree build pins MP/SHMEM; CC-SAS builds it in parallel)")
}
