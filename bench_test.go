package o2k_test

// One benchmark per table/figure of the (reconstructed) evaluation — see
// DESIGN.md §5. Each benchmark regenerates its artifact through the
// experiments registry and prints it once, so
//
//	go test -bench=. -benchmem
//
// both measures the harness and emits every table the paper reports.
// Figures at full scale sweep P = 1..64; set -short for the quick variant.

import (
	"fmt"
	"sync"
	"testing"

	"o2k/internal/experiments"
	"o2k/internal/runner"
)

var printOnce sync.Map

func opts(b *testing.B) experiments.Opts {
	if testing.Short() {
		return experiments.QuickOpts()
	}
	return experiments.DefaultOpts()
}

func runExperiment(b *testing.B, name string) {
	o := opts(b)
	var out string
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, o)
		if err != nil {
			b.Fatal(err)
		}
		out = tables[0].String()
	}
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		fmt.Printf("\n%s\n", out)
	}
}

func BenchmarkTable1Workloads(b *testing.B) { runExperiment(b, "workloads") }

func BenchmarkFig2MeshSpeedup(b *testing.B) { runExperiment(b, "mesh-speedup") }

func BenchmarkFig3NBodySpeedup(b *testing.B) { runExperiment(b, "nbody-speedup") }

func BenchmarkFig4PhaseBreakdown(b *testing.B) { runExperiment(b, "breakdown") }

func BenchmarkTable5ProgrammingEffort(b *testing.B) { runExperiment(b, "loc") }

func BenchmarkTable6Memory(b *testing.B) { runExperiment(b, "memory") }

func BenchmarkFig7LatencySweep(b *testing.B) { runExperiment(b, "latency-sweep") }

func BenchmarkFig8LoadBalance(b *testing.B) { runExperiment(b, "loadbalance") }

func BenchmarkTable9Traffic(b *testing.B) { runExperiment(b, "traffic") }

func BenchmarkFig10RegularControl(b *testing.B) { runExperiment(b, "regular-control") }

func BenchmarkFig11PageMigration(b *testing.B) { runExperiment(b, "page-migration") }

func BenchmarkFig12MachineSweep(b *testing.B) { runExperiment(b, "machine-sweep") }

func BenchmarkFig13Hybrid(b *testing.B) { runExperiment(b, "hybrid") }

func BenchmarkFig14ConjugateGradient(b *testing.B) { runExperiment(b, "cg") }

// BenchmarkAllShared measures the whole suite on one shared cell engine —
// the `o2kbench -exp all` path, where the parallel runner simulates each
// unique (app, model, machine, workload, P) cell once and every experiment
// assembles from the shared cache. Contrast with the sum of the
// per-artifact benchmarks above, which each pay for their own cells.
func BenchmarkAllShared(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunAll(runner.New(o.Jobs), o)
	}
}
