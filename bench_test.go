package o2k_test

// One benchmark per table/figure of the (reconstructed) evaluation — see
// DESIGN.md §5. Each benchmark regenerates its artifact through the
// experiments package and prints it once, so
//
//	go test -bench=. -benchmem
//
// both measures the harness and emits every table the paper reports.
// Figures at full scale sweep P = 1..64; set -short for the quick variant.

import (
	"fmt"
	"sync"
	"testing"

	"o2k/internal/core"
	"o2k/internal/experiments"
	"o2k/internal/runner"
)

var printOnce sync.Map

func opts(b *testing.B) experiments.Opts {
	if testing.Short() {
		return experiments.QuickOpts()
	}
	return experiments.DefaultOpts()
}

func runExperiment(b *testing.B, name string, gen func(experiments.Opts) *core.Table) {
	o := opts(b)
	var t *core.Table
	for i := 0; i < b.N; i++ {
		t = gen(o)
	}
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		fmt.Printf("\n%s\n", t.String())
	}
}

func BenchmarkTable1Workloads(b *testing.B) {
	runExperiment(b, "table1", experiments.Table1)
}

func BenchmarkFig2MeshSpeedup(b *testing.B) {
	runExperiment(b, "fig2", experiments.Fig2)
}

func BenchmarkFig3NBodySpeedup(b *testing.B) {
	runExperiment(b, "fig3", experiments.Fig3)
}

func BenchmarkFig4PhaseBreakdown(b *testing.B) {
	runExperiment(b, "fig4", experiments.Fig4)
}

func BenchmarkTable5ProgrammingEffort(b *testing.B) {
	runExperiment(b, "table5", func(experiments.Opts) *core.Table { return experiments.Table5() })
}

func BenchmarkTable6Memory(b *testing.B) {
	runExperiment(b, "table6", experiments.Table6)
}

func BenchmarkFig7LatencySweep(b *testing.B) {
	runExperiment(b, "fig7", experiments.Fig7)
}

func BenchmarkFig8LoadBalance(b *testing.B) {
	runExperiment(b, "fig8", experiments.Fig8)
}

func BenchmarkTable9Traffic(b *testing.B) {
	runExperiment(b, "table9", experiments.Table9)
}

func BenchmarkFig10RegularControl(b *testing.B) {
	runExperiment(b, "fig10", experiments.Fig10)
}

func BenchmarkFig11PageMigration(b *testing.B) {
	runExperiment(b, "fig11", experiments.Fig11)
}

func BenchmarkFig12MachineSweep(b *testing.B) {
	runExperiment(b, "fig12", experiments.Fig12)
}

func BenchmarkFig13Hybrid(b *testing.B) {
	runExperiment(b, "fig13", experiments.Fig13)
}

func BenchmarkFig14ConjugateGradient(b *testing.B) {
	runExperiment(b, "fig14", experiments.Fig14)
}

// BenchmarkAllShared measures the whole suite on one shared cell engine —
// the `o2kbench -exp all` path, where the parallel runner simulates each
// unique (app, model, machine, workload, P) cell once and every experiment
// assembles from the shared cache. Contrast with the sum of the
// per-artifact benchmarks above, which each pay for their own cells.
func BenchmarkAllShared(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunAll(runner.New(o.Jobs), o)
	}
}
