// Package o2k reproduces "A Comparison of Three Programming Models for
// Adaptive Applications on the Origin2000" (Shan, Singh, Oliker, Biswas;
// SC 2000) as a self-contained Go system: a deterministic virtual-time
// simulator of an Origin2000-class ccNUMA machine, three programming-model
// runtimes (MPI-style message passing, SGI/Cray SHMEM-style one-sided
// communication, and the hardware cache-coherent shared address space), two
// adaptive applications implemented once per model (dynamic unstructured
// mesh adaptation with a PLUM-style load balancer, and Barnes-Hut N-body),
// and a harness that regenerates the study's tables and figures.
//
// Start with README.md, DESIGN.md (system inventory and experiment index),
// and examples/quickstart. The root bench_test.go regenerates every table
// and figure; cmd/o2kbench does the same from the command line.
package o2k
