module o2k

go 1.24
